#include "ingest/ingest.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cmh/hierarchy.h"
#include "common/interval.h"
#include "common/strings.h"
#include "drivers/extents.h"
#include "dtd/dtd.h"
#include "xml/lexer.h"
#include "xml/token.h"

namespace cxml::ingest {

namespace {

/// One closed element from the lexing pass, before layer assignment.
/// `seq` is the open order — document order, outer before inner on
/// equal extents, which is the insertion order BuildGoddagFromExtents
/// needs to re-nest equal-extent elements correctly.
struct RawElement {
  size_t seq = 0;
  std::string tag;
  std::vector<xml::Attribute> attrs;
  Interval chars;
};

/// A milestone empty element, reduced to its derived span unit and the
/// content offset it fired at.
struct MilestoneEvent {
  std::vector<xml::Attribute> attrs;
  size_t offset = 0;
};

/// One offset-ranged annotation from a <standOff> block.
struct StandoffAnnotation {
  std::string tag;
  std::vector<xml::Attribute> attrs;
  Interval chars;
};

struct ParsedDocument {
  std::string root_tag;
  std::string content;
  std::vector<RawElement> elements;
  /// unit name (page/line/column/@unit) -> events in document order.
  std::map<std::string, std::vector<MilestoneEvent>> milestones;
  std::vector<StandoffAnnotation> standoff;
};

/// HTML void elements: never take content, auto-closed on sight.
bool IsVoidHtmlElement(std::string_view tag) {
  static const std::set<std::string, std::less<>> kVoid = {
      "area", "base",  "br",    "col",  "embed",  "hr",    "img",
      "input", "link", "meta",  "param", "source", "track", "wbr"};
  return kVoid.count(tag) > 0;
}

std::string AsciiLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

/// TEI milestone empties and the span unit each one derives. The
/// generic <milestone> names its unit via the @unit attribute.
const char* MilestoneUnitFor(std::string_view tag) {
  if (tag == "pb") return "page";
  if (tag == "lb") return "line";
  if (tag == "cb") return "column";
  return nullptr;
}

Status At(const xml::Position& pos, std::string_view message) {
  return status::InvalidArgument(StrCat(
      message, StrFormat(" (line %zu, column %zu)", pos.line, pos.column)));
}

bool ParseSize(std::string_view s, size_t* out) {
  if (s.empty() || s.size() > 18) return false;
  size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

std::vector<xml::Attribute> StripAttrs(
    std::vector<xml::Attribute> attrs,
    std::initializer_list<std::string_view> names) {
  attrs.erase(std::remove_if(attrs.begin(), attrs.end(),
                             [&](const xml::Attribute& a) {
                               for (std::string_view n : names) {
                                 if (a.name == n) return true;
                               }
                               return false;
                             }),
              attrs.end());
  return attrs;
}

/// ---------------------------------------------------------- lexing pass

Result<ParsedDocument> Parse(std::string_view source, Format format) {
  const bool lenient = format == Format::kHtml;
  const bool tei = format == Format::kTei;

  xml::Lexer lexer(source);
  ParsedDocument out;

  struct Open {
    size_t seq = 0;
    std::string tag;
    std::vector<xml::Attribute> attrs;
    size_t start = 0;
    xml::Position pos;
  };
  std::vector<Open> stack;
  size_t next_seq = 0;
  bool saw_root = false;
  /// >0: inside <teiHeader> — the whole subtree is metadata, dropped.
  size_t skip_depth = 0;
  /// >0: inside <standOff> — direct children become annotations,
  /// everything else in the subtree is dropped.
  size_t standoff_depth = 0;

  auto emit = [&](Open open) {
    RawElement el;
    el.seq = open.seq;
    el.tag = std::move(open.tag);
    el.attrs = std::move(open.attrs);
    el.chars = Interval(open.start, out.content.size());
    out.elements.push_back(std::move(el));
  };

  while (true) {
    Result<xml::Event> next = lexer.Next();
    if (!next.ok()) {
      // Lexer failures surface as kParseError; the import contract is
      // one uniform code for every bad input, so re-wrap.
      return status::InvalidArgument(next.status().message());
    }
    xml::Event event = std::move(next).value();
    if (event.kind == xml::EventKind::kEndOfDocument) break;
    switch (event.kind) {
      case xml::EventKind::kComment:
      case xml::EventKind::kProcessingInstruction:
      case xml::EventKind::kXmlDecl:
      case xml::EventKind::kDoctype:
        break;

      case xml::EventKind::kText:
      case xml::EventKind::kCData: {
        if (skip_depth > 0 || standoff_depth > 0) break;
        if (stack.empty() && !lenient) {
          if (event.kind == xml::EventKind::kText &&
              IsAllWhitespace(event.text)) {
            break;
          }
          return At(event.pos, "character data outside the root element");
        }
        out.content.append(event.text);
        break;
      }

      case xml::EventKind::kStartElement: {
        std::string name =
            lenient ? AsciiLower(std::move(event.name)) : std::move(event.name);
        if (lenient) {
          for (xml::Attribute& a : event.attrs) a.name = AsciiLower(a.name);
        }
        if (skip_depth > 0) {
          if (!event.self_closing) ++skip_depth;
          break;
        }
        if (tei && name == "teiHeader") {
          if (!event.self_closing) skip_depth = 1;
          break;
        }
        if (standoff_depth > 0) {
          if (standoff_depth == 1) {
            // A direct child of <standOff>: an offset-ranged annotation.
            const std::string* from = event.FindAttribute("from");
            const std::string* to = event.FindAttribute("to");
            if (from == nullptr || to == nullptr) {
              return At(event.pos,
                        StrCat("standOff annotation <", name,
                               "> needs integer 'from' and 'to' attributes"));
            }
            StandoffAnnotation ann;
            ann.tag = name;
            size_t begin = 0, end = 0;
            if (!ParseSize(*from, &begin) || !ParseSize(*to, &end)) {
              return At(event.pos,
                        StrCat("standOff annotation <", name,
                               "> has non-numeric 'from'/'to' offsets"));
            }
            ann.chars = Interval(begin, end);
            ann.attrs = StripAttrs(std::move(event.attrs), {"from", "to"});
            out.standoff.push_back(std::move(ann));
          }
          if (!event.self_closing) ++standoff_depth;
          break;
        }
        if (tei && (name == "standOff" || name == "standoff")) {
          if (!event.self_closing) standoff_depth = 1;
          break;
        }
        if (tei) {
          const char* unit = MilestoneUnitFor(name);
          const bool generic = name == "milestone";
          if (unit != nullptr || generic) {
            if (!event.self_closing) {
              return At(event.pos, StrCat("milestone element <", name,
                                          "> must be an empty element"));
            }
            std::string span_unit;
            if (generic) {
              const std::string* u = event.FindAttribute("unit");
              if (u == nullptr || u->empty()) {
                return At(event.pos,
                          "<milestone> needs a non-empty 'unit' attribute");
              }
              span_unit = *u;
            } else {
              span_unit = unit;
            }
            MilestoneEvent ms;
            ms.offset = out.content.size();
            ms.attrs = generic ? StripAttrs(std::move(event.attrs), {"unit"})
                               : std::move(event.attrs);
            out.milestones[span_unit].push_back(std::move(ms));
            break;
          }
        }
        // A regular element.
        if (stack.empty() && !lenient) {
          if (saw_root) {
            return At(event.pos, "more than one root element");
          }
          saw_root = true;
          out.root_tag = name;
          if (event.self_closing) break;  // empty root: no content, no list
          Open open;
          open.seq = next_seq++;
          open.tag = std::move(name);
          open.attrs = std::move(event.attrs);
          open.start = out.content.size();
          open.pos = event.pos;
          stack.push_back(std::move(open));
          break;
        }
        const bool empty =
            event.self_closing || (lenient && IsVoidHtmlElement(name));
        Open open;
        open.seq = next_seq++;
        open.tag = std::move(name);
        open.attrs = std::move(event.attrs);
        open.start = out.content.size();
        open.pos = event.pos;
        if (empty) {
          emit(std::move(open));
        } else {
          stack.push_back(std::move(open));
        }
        break;
      }

      case xml::EventKind::kEndElement: {
        std::string name =
            lenient ? AsciiLower(std::move(event.name)) : std::move(event.name);
        if (skip_depth > 0) {
          --skip_depth;
          break;
        }
        if (standoff_depth > 0) {
          --standoff_depth;
          break;
        }
        if (lenient && IsVoidHtmlElement(name)) break;  // </br> etc.: drop
        if (stack.empty()) {
          if (lenient) break;  // stray end tag: drop
          return At(event.pos, StrCat("unmatched end tag </", name, ">"));
        }
        if (stack.back().tag == name) {
          Open open = std::move(stack.back());
          stack.pop_back();
          if (stack.empty() && !lenient) break;  // the root: not in the list
          emit(std::move(open));
          break;
        }
        if (!lenient) {
          return At(event.pos,
                    StrCat("end tag </", name, "> does not match open <",
                           stack.back().tag, ">"));
        }
        // Lenient: an end tag matching an ancestor auto-closes every
        // element opened since; one matching nothing is dropped.
        size_t match = stack.size();
        for (size_t i = stack.size(); i-- > 0;) {
          if (stack[i].tag == name) {
            match = i;
            break;
          }
        }
        if (match == stack.size()) break;
        while (stack.size() > match) {
          Open open = std::move(stack.back());
          stack.pop_back();
          emit(std::move(open));
        }
        break;
      }

      case xml::EventKind::kEndOfDocument:
        break;
    }
  }

  if (!stack.empty()) {
    if (!lenient) {
      return At(stack.back().pos,
                StrCat("unclosed element <", stack.back().tag, ">"));
    }
    while (!stack.empty()) {  // HTML: auto-close everything still open
      Open open = std::move(stack.back());
      stack.pop_back();
      emit(std::move(open));
    }
  }
  if (skip_depth > 0) {
    return status::InvalidArgument("unclosed <teiHeader>");
  }
  if (standoff_depth > 0) {
    return status::InvalidArgument("unclosed <standOff>");
  }
  if (lenient) {
    out.root_tag = "document";
  } else if (!saw_root) {
    return status::InvalidArgument("document has no root element");
  }

  // Back to document (open) order: the emit order above is close order,
  // which would nest equal-extent elements inside-out.
  std::sort(out.elements.begin(), out.elements.end(),
            [](const RawElement& a, const RawElement& b) {
              return a.seq < b.seq;
            });
  return out;
}

/// ------------------------------------------------ fragmentation merging

/// Finds every tag that participates in fragmentation (any occurrence
/// carrying part= or next=/prev= links) and merges each chain into one
/// element spanning first-start .. last-end. All occurrences of a
/// fragmented tag (chained or not) move to that tag's overlay
/// hierarchy, reported via `frag_tags`.
Status MergeFragments(ParsedDocument* doc, std::set<std::string>* frag_tags,
                      size_t* merged_chains) {
  for (const RawElement& el : doc->elements) {
    if (el.attrs.empty()) continue;
    for (const xml::Attribute& a : el.attrs) {
      if (a.name == "part" || a.name == "next" || a.name == "prev") {
        frag_tags->insert(el.tag);
        break;
      }
    }
  }
  if (frag_tags->empty()) return Status::Ok();

  auto find_attr = [](const RawElement& el,
                      std::string_view name) -> const std::string* {
    for (const xml::Attribute& a : el.attrs) {
      if (a.name == name) return &a.value;
    }
    return nullptr;
  };

  std::vector<RawElement> merged;
  std::vector<bool> consumed(doc->elements.size(), false);

  for (const std::string& tag : *frag_tags) {
    // Document-order indices of this tag's occurrences.
    std::vector<size_t> occ;
    for (size_t i = 0; i < doc->elements.size(); ++i) {
      if (doc->elements[i].tag == tag) occ.push_back(i);
    }

    // part="I|M|F" chains run sequentially in document order.
    bool open = false;
    RawElement chain;
    for (size_t i : occ) {
      const RawElement& el = doc->elements[i];
      const std::string* part = find_attr(el, "part");
      if (part == nullptr) continue;
      if (find_attr(el, "next") != nullptr ||
          find_attr(el, "prev") != nullptr) {
        return status::InvalidArgument(
            StrCat("element <", tag,
                   "> mixes part= fragmentation with next=/prev= links"));
      }
      if (*part == "N") continue;  // explicit "not fragmented"
      if (*part == "I") {
        if (open) {
          return status::InvalidArgument(
              StrCat("fragment chain of <", tag,
                     "> restarts (part=\"I\") before part=\"F\""));
        }
        open = true;
        chain = RawElement();
        chain.seq = el.seq;
        chain.tag = tag;
        chain.attrs = StripAttrs(el.attrs, {"part"});
        chain.chars = el.chars;
        consumed[i] = true;
      } else if (*part == "M" || *part == "F") {
        if (!open) {
          return status::InvalidArgument(
              StrCat("fragment of <", tag, "> has part=\"", *part,
                     "\" with no open part=\"I\" chain"));
        }
        chain.chars = chain.chars.Union(el.chars);
        consumed[i] = true;
        if (*part == "F") {
          open = false;
          merged.push_back(std::move(chain));
          ++*merged_chains;
        }
      } else {
        return status::InvalidArgument(
            StrCat("element <", tag, "> has invalid part=\"", *part,
                   "\" (expected I, M, F or N)"));
      }
    }
    if (open) {
      return status::InvalidArgument(StrCat(
          "fragment chain of <", tag, "> is missing its part=\"F\" end"));
    }

    // next="[#]id" chains: follow xml:id links from each head (an
    // element with next= but no prev=).
    std::map<std::string, size_t> by_id;
    for (size_t i : occ) {
      const std::string* id = find_attr(doc->elements[i], "xml:id");
      if (id == nullptr) id = find_attr(doc->elements[i], "id");
      if (id != nullptr && !id->empty()) by_id[*id] = i;
    }
    auto deref = [&](const std::string& link) -> size_t {
      std::string key = link;
      if (!key.empty() && key[0] == '#') key = key.substr(1);
      auto it = by_id.find(key);
      return it == by_id.end() ? doc->elements.size() : it->second;
    };
    std::set<size_t> in_link_chain;
    for (size_t i : occ) {
      const RawElement& head = doc->elements[i];
      if (find_attr(head, "next") == nullptr ||
          find_attr(head, "prev") != nullptr) {
        continue;
      }
      RawElement chain2;
      chain2.seq = head.seq;
      chain2.tag = tag;
      chain2.attrs = StripAttrs(head.attrs, {"part", "next", "prev"});
      chain2.chars = head.chars;
      size_t at = i;
      size_t hops = 0;
      while (true) {
        if (!in_link_chain.insert(at).second) {
          return status::InvalidArgument(
              StrCat("next= links of <", tag, "> form a cycle"));
        }
        consumed[at] = true;
        const std::string* next = find_attr(doc->elements[at], "next");
        if (next == nullptr) break;
        size_t to = deref(*next);
        if (to >= doc->elements.size() || doc->elements[to].tag != tag) {
          return status::InvalidArgument(
              StrCat("next=\"", *next, "\" on <", tag,
                     "> does not resolve to an xml:id of the same tag"));
        }
        if (++hops > doc->elements.size()) {
          return status::InvalidArgument(
              StrCat("next= links of <", tag, "> form a cycle"));
        }
        at = to;
        chain2.chars = chain2.chars.Union(doc->elements[at].chars);
      }
      merged.push_back(std::move(chain2));
      ++*merged_chains;
    }
    // Anything still carrying a link was never reached from a head.
    for (size_t i : occ) {
      if (in_link_chain.count(i) > 0) continue;
      if (find_attr(doc->elements[i], "prev") != nullptr) {
        return status::InvalidArgument(
            StrCat("element <", tag,
                   "> has a prev= link no next= chain reaches"));
      }
    }
  }

  std::vector<RawElement> kept;
  kept.reserve(doc->elements.size());
  for (size_t i = 0; i < doc->elements.size(); ++i) {
    if (!consumed[i]) kept.push_back(std::move(doc->elements[i]));
  }
  for (RawElement& m : merged) kept.push_back(std::move(m));
  std::sort(kept.begin(), kept.end(),
            [](const RawElement& a, const RawElement& b) {
              return a.seq < b.seq;
            });
  doc->elements = std::move(kept);
  return Status::Ok();
}

/// ------------------------------------------------------- CMH assembly

std::string DtdFor(const std::string& root_tag,
                   const std::set<std::string>& tags) {
  std::string out = StrCat("<!ELEMENT ", root_tag, " ANY>");
  for (const std::string& t : tags) {
    if (t == root_tag) continue;
    out += StrCat("<!ELEMENT ", t, " ANY>");
  }
  return out;
}

}  // namespace

const char* FormatToString(Format format) {
  switch (format) {
    case Format::kXml:
      return "xml";
    case Format::kTei:
      return "tei";
    case Format::kHtml:
      return "html";
  }
  return "unknown";
}

Result<Format> ParseFormat(std::string_view name) {
  if (name == "xml") return Format::kXml;
  if (name == "tei") return Format::kTei;
  if (name == "html") return Format::kHtml;
  return status::InvalidArgument(
      StrCat("unknown import format '", name, "' (expected xml, tei or html)"));
}

Result<ImportedDocument> Import(std::string_view source,
                                const ImportOptions& options) {
  CXML_ASSIGN_OR_RETURN(ParsedDocument parsed, Parse(source, options.format));

  std::set<std::string> frag_tags;
  size_t merged_chains = 0;
  if (options.format == Format::kTei) {
    CXML_RETURN_IF_ERROR(
        MergeFragments(&parsed, &frag_tags, &merged_chains));
  }

  // Layer the tag vocabulary: backbone, one hierarchy per milestone
  // unit, one overlay per fragmented tag, one standoff hierarchy.
  // Hierarchies must partition the vocabulary, so a tag claimed twice
  // is a convention conflict the importer rejects up front.
  std::map<std::string, std::string> layer_of;  // tag -> layer name
  auto claim = [&](const std::string& tag,
                   const std::string& layer) -> Status {
    if (tag == parsed.root_tag) {
      return status::InvalidArgument(
          StrCat("element tag '", tag, "' collides with the root tag"));
    }
    auto [it, inserted] = layer_of.emplace(tag, layer);
    if (!inserted && it->second != layer) {
      return status::InvalidArgument(
          StrCat("tag '", tag, "' is claimed by both the '", it->second,
                 "' and '", layer, "' layers"));
    }
    return Status::Ok();
  };

  std::set<std::string> backbone_tags;
  for (const RawElement& el : parsed.elements) {
    if (frag_tags.count(el.tag) > 0) continue;
    backbone_tags.insert(el.tag);
  }
  for (const std::string& tag : backbone_tags) {
    CXML_RETURN_IF_ERROR(claim(tag, "text"));
  }
  for (const auto& [unit, events] : parsed.milestones) {
    (void)events;
    CXML_RETURN_IF_ERROR(claim(unit, unit));
  }
  for (const std::string& tag : frag_tags) {
    CXML_RETURN_IF_ERROR(claim(tag, StrCat("frag:", tag)));
  }
  std::set<std::string> standoff_tags;
  for (const StandoffAnnotation& ann : parsed.standoff) {
    if (ann.chars.begin > ann.chars.end ||
        ann.chars.end > parsed.content.size()) {
      return status::InvalidArgument(StrCat(
          "standOff annotation <", ann.tag, "> range [",
          StrFormat("%zu,%zu", ann.chars.begin, ann.chars.end),
          ") exceeds the base text (",
          StrFormat("%zu", parsed.content.size()), " chars)"));
    }
    standoff_tags.insert(ann.tag);
  }
  for (const std::string& tag : standoff_tags) {
    CXML_RETURN_IF_ERROR(claim(tag, "standoff"));
  }

  // Hierarchy registration order is deterministic: backbone first, then
  // milestone units (sorted), fragmented tags (sorted), standoff.
  ImportedDocument out;
  out.doc.cmh = std::make_unique<cmh::ConcurrentHierarchies>(parsed.root_tag);
  auto add_hierarchy = [&](const std::string& name,
                           const std::set<std::string>& tags) -> Status {
    auto dtd = dtd::ParseDtd(DtdFor(parsed.root_tag, tags));
    if (!dtd.ok()) {
      return status::InvalidArgument(StrCat("synthesizing the '", name,
                                            "' hierarchy DTD: ",
                                            dtd.status().message()));
    }
    auto added = out.doc.cmh->AddHierarchy(name, std::move(dtd).value());
    if (!added.ok()) {
      return status::InvalidArgument(StrCat("registering the '", name,
                                            "' hierarchy: ",
                                            added.status().message()));
    }
    return Status::Ok();
  };

  CXML_RETURN_IF_ERROR(add_hierarchy("text", backbone_tags));
  for (const auto& [unit, events] : parsed.milestones) {
    (void)events;
    CXML_RETURN_IF_ERROR(add_hierarchy(unit, {unit}));
  }
  for (const std::string& tag : frag_tags) {
    CXML_RETURN_IF_ERROR(add_hierarchy(StrCat("frag:", tag), {tag}));
  }
  if (!standoff_tags.empty()) {
    CXML_RETURN_IF_ERROR(add_hierarchy("standoff", standoff_tags));
  }

  // Reduce every layer to logical elements over the shared content.
  std::vector<drivers::LogicalElement> elements;
  elements.reserve(parsed.elements.size() + parsed.standoff.size());
  const cmh::HierarchyId text_h = out.doc.cmh->FindIdByName("text");
  for (RawElement& el : parsed.elements) {
    drivers::LogicalElement le;
    le.hierarchy = frag_tags.count(el.tag) > 0
                       ? out.doc.cmh->FindIdByName(StrCat("frag:", el.tag))
                       : text_h;
    le.tag = std::move(el.tag);
    le.attrs = std::move(el.attrs);
    le.chars = el.chars;
    elements.push_back(std::move(le));
  }
  size_t milestone_spans = 0;
  for (auto& [unit, events] : parsed.milestones) {
    const cmh::HierarchyId h = out.doc.cmh->FindIdByName(unit);
    for (size_t i = 0; i < events.size(); ++i) {
      // Each milestone opens a span running to the next same-unit
      // milestone (or the end of the document).
      drivers::LogicalElement le;
      le.hierarchy = h;
      le.tag = unit;
      le.attrs = std::move(events[i].attrs);
      le.chars = Interval(events[i].offset, i + 1 < events.size()
                                                ? events[i + 1].offset
                                                : parsed.content.size());
      elements.push_back(std::move(le));
      ++milestone_spans;
    }
  }
  const cmh::HierarchyId standoff_h = out.doc.cmh->FindIdByName("standoff");
  for (StandoffAnnotation& ann : parsed.standoff) {
    drivers::LogicalElement le;
    le.hierarchy = standoff_h;
    le.tag = std::move(ann.tag);
    le.attrs = std::move(ann.attrs);
    le.chars = ann.chars;
    elements.push_back(std::move(le));
  }

  out.stats.hierarchies = out.doc.cmh->size();
  out.stats.elements = elements.size();
  out.stats.milestone_spans = milestone_spans;
  out.stats.merged_fragments = merged_chains;
  out.stats.standoff_annotations = parsed.standoff.size();
  out.stats.content_bytes = parsed.content.size();

  auto g = drivers::BuildGoddagFromExtents(*out.doc.cmh,
                                           std::move(parsed.content),
                                           std::move(elements));
  if (!g.ok()) {
    // Same-hierarchy overlap etc.: a convention violation in the input,
    // reported uniformly as InvalidArgument so the wire layer rejects
    // the import without registering anything.
    return status::InvalidArgument(
        StrCat("import failed: ", g.status().message()));
  }
  out.doc.g = std::make_unique<goddag::Goddag>(std::move(g).value());
  return out;
}

}  // namespace cxml::ingest
