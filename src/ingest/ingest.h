#ifndef CXML_INGEST_INGEST_H_
#define CXML_INGEST_INGEST_H_

#include <cstddef>
#include <string_view>

#include "common/result.h"
#include "storage/binary.h"

namespace cxml::ingest {

/// Input dialects accepted by the importer.
enum class Format {
  /// Strict well-formed XML: one root element, balanced tags. Every
  /// element lands in the single backbone hierarchy ("text").
  kXml,
  /// Strict XML plus TEI overlap conventions: milestone empties
  /// (pb/lb/cb/milestone) become derived span hierarchies,
  /// `part="I|M|F"` and `next`-link chains merge fragmented elements
  /// into per-tag overlay hierarchies, `<standOff>` blocks become
  /// offset-ranged annotations, `<teiHeader>` is skipped as metadata.
  kTei,
  /// Lenient HTML-ish markup: names case-folded to lowercase, void
  /// elements (br, img, ...) auto-closed, mismatched end tags close
  /// intermediates or are dropped, open elements auto-closed at EOF,
  /// multiple roots / top-level text wrapped in a virtual
  /// `document` root. Conventions are not applied.
  kHtml,
};

const char* FormatToString(Format format);

/// Parses the wire-level format token ("xml" | "tei" | "html");
/// anything else is InvalidArgument.
Result<Format> ParseFormat(std::string_view name);

/// What the importer did — surfaced to metrics and tests.
struct ImportStats {
  size_t hierarchies = 0;            ///< hierarchies in the final CMH
  size_t elements = 0;               ///< logical elements built (all layers)
  size_t milestone_spans = 0;        ///< spans derived from milestone empties
  size_t merged_fragments = 0;       ///< fragment chains merged into one element
  size_t standoff_annotations = 0;   ///< offset-ranged standOff annotations
  size_t content_bytes = 0;          ///< shared content length
};

struct ImportOptions {
  Format format = Format::kTei;
};

/// One imported document: the CMH + GODDAG pair in the exact shape
/// `DocumentStore::Register` takes, plus the import tally.
struct ImportedDocument {
  storage::LoadedGoddag doc;
  ImportStats stats;
};

/// Turns external markup into a published-ready multi-hierarchy GODDAG.
/// Every failure — malformed markup, convention violations, layer
/// conflicts, out-of-range standoff offsets, same-hierarchy overlap —
/// is reported as InvalidArgument with a description; nothing is
/// partially constructed.
Result<ImportedDocument> Import(std::string_view source,
                                const ImportOptions& options = ImportOptions());

}  // namespace cxml::ingest

#endif  // CXML_INGEST_INGEST_H_
