#ifndef CXML_XPATH_VALUE_H_
#define CXML_XPATH_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "goddag/goddag.h"

namespace cxml::xpath {

/// A member of an XPath node-set: a GODDAG node, or one of its
/// attributes (attr >= 0 indexes into `attributes(node)`).
struct NodeEntry {
  goddag::NodeId node = goddag::kInvalidNode;
  int32_t attr = -1;

  bool is_attribute() const { return attr >= 0; }
  bool operator==(const NodeEntry& o) const {
    return node == o.node && attr == o.attr;
  }
  bool operator<(const NodeEntry& o) const {  // arena order, for dedup
    return node != o.node ? node < o.node : attr < o.attr;
  }

  static NodeEntry Of(goddag::NodeId id) { return {id, -1}; }
  static NodeEntry Attr(goddag::NodeId id, int32_t index) {
    return {id, index};
  }
  /// The virtual document node: the parent of the GODDAG root, so that
  /// absolute paths behave exactly like XPath 1.0 (`/r` selects the root
  /// element, `//w` its descendants).
  static NodeEntry Document() { return {goddag::kInvalidNode, -1}; }
  bool is_document() const { return node == goddag::kInvalidNode; }
};

using NodeSet = std::vector<NodeEntry>;

/// An XPath 1.0 value: node-set, boolean, number or string, with the
/// standard coercions. Conversions that need node string-values take the
/// GODDAG.
class Value {
 public:
  enum class Type { kNodeSet, kBoolean, kNumber, kString };

  Value() : type_(Type::kNodeSet) {}
  explicit Value(NodeSet nodes)
      : type_(Type::kNodeSet), nodes_(std::move(nodes)) {}
  explicit Value(bool b) : type_(Type::kBoolean), boolean_(b) {}
  explicit Value(double n) : type_(Type::kNumber), number_(n) {}
  explicit Value(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}

  Type type() const { return type_; }
  bool is_node_set() const { return type_ == Type::kNodeSet; }

  const NodeSet& nodes() const { return nodes_; }
  NodeSet& nodes() { return nodes_; }

  /// XPath boolean(): non-empty node-set / non-zero non-NaN number /
  /// non-empty string.
  bool ToBoolean() const;
  /// XPath number(); strings parse as XPath numbers (NaN on failure).
  double ToNumber(const goddag::Goddag& g) const;
  /// XPath string(); node-sets use the first node in document order.
  std::string ToString(const goddag::Goddag& g) const;

  /// String-value of one node-set entry: the text dominated by the node,
  /// or the attribute value.
  static std::string StringValue(const goddag::Goddag& g,
                                 const NodeEntry& entry);

  /// Document-order comparison of entries (attributes follow their node,
  /// ordered by index).
  static bool DocBefore(const goddag::Goddag& g, const NodeEntry& a,
                        const NodeEntry& b);

  /// Sorts into document order and removes duplicates.
  static void Normalize(const goddag::Goddag& g, NodeSet* set);

 private:
  Type type_;
  NodeSet nodes_;
  bool boolean_ = false;
  double number_ = 0;
  std::string string_;
};

/// Parses a string as an XPath number (optional sign, digits, fraction);
/// NaN when malformed.
double ParseXPathNumber(std::string_view s);

/// Formats a number per XPath string() rules (integers without ".0",
/// NaN/Infinity spelled out).
std::string FormatXPathNumber(double value);

}  // namespace cxml::xpath

#endif  // CXML_XPATH_VALUE_H_
