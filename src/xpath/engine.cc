#include "xpath/engine.h"

namespace cxml::xpath {

Result<const Expr*> XPathEngine::ParseCached(std::string_view expression) {
  auto it = cache_.find(expression);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return static_cast<const Expr*>(it->second->second.get());
  }
  CXML_ASSIGN_OR_RETURN(ExprPtr parsed, ParseXPath(expression));
  const Expr* raw = parsed.get();
  lru_.emplace_front(std::string(expression), std::move(parsed));
  cache_.emplace(std::string_view(lru_.front().first), lru_.begin());
  if (lru_.size() > cache_capacity_) {
    // cache_capacity_ >= 1, so the evicted entry is never the one just
    // inserted and `raw` stays valid for this evaluation.
    cache_.erase(std::string_view(lru_.back().first));
    lru_.pop_back();
  }
  return raw;
}

Result<Value> XPathEngine::Evaluate(std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(const Expr* expr, ParseCached(expression));
  return evaluator_.Evaluate(*expr);
}

Result<Value> XPathEngine::EvaluateFrom(std::string_view expression,
                                        goddag::NodeId context) {
  CXML_ASSIGN_OR_RETURN(const Expr* expr, ParseCached(expression));
  return evaluator_.Evaluate(*expr, NodeEntry::Of(context));
}

Result<std::vector<goddag::NodeId>> XPathEngine::SelectNodes(
    std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(Value value, Evaluate(expression));
  if (!value.is_node_set()) {
    return status::InvalidArgument(
        "XPath: expression does not evaluate to a node-set");
  }
  std::vector<goddag::NodeId> out;
  out.reserve(value.nodes().size());
  for (const NodeEntry& e : value.nodes()) {
    if (!e.is_document()) out.push_back(e.node);
  }
  return out;
}

Result<std::vector<std::string>> XPathEngine::EvaluateToStrings(
    std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(Value value, Evaluate(expression));
  std::vector<std::string> out;
  if (value.is_node_set()) {
    out.reserve(value.nodes().size());
    for (const NodeEntry& e : value.nodes()) {
      out.push_back(Value::StringValue(*g_, e));
    }
  } else {
    out.push_back(value.ToString(*g_));
  }
  return out;
}

}  // namespace cxml::xpath
