#include "xpath/engine.h"

namespace cxml::xpath {

Result<const CompiledQuery*> XPathEngine::ParseCached(
    std::string_view expression) {
  if (const CompiledQueryPtr* hit = cache_.Get(expression)) {
    return hit->get();
  }
  CXML_ASSIGN_OR_RETURN(CompiledQueryPtr compiled, Compile(expression));
  return cache_.Put(expression, std::move(compiled))->get();
}

Result<Value> XPathEngine::Evaluate(std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(const CompiledQuery* query,
                        ParseCached(expression));
  return Evaluate(*query);
}

Result<Value> XPathEngine::EvaluateFrom(std::string_view expression,
                                        goddag::NodeId context) {
  CXML_ASSIGN_OR_RETURN(const CompiledQuery* query,
                        ParseCached(expression));
  return EvaluateFrom(*query, context);
}

Result<std::vector<goddag::NodeId>> XPathEngine::SelectNodes(
    std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(Value value, Evaluate(expression));
  if (!value.is_node_set()) {
    return status::InvalidArgument(
        "XPath: expression does not evaluate to a node-set");
  }
  std::vector<goddag::NodeId> out;
  out.reserve(value.nodes().size());
  for (const NodeEntry& e : value.nodes()) {
    if (!e.is_document()) out.push_back(e.node);
  }
  return out;
}

namespace {

Result<std::vector<std::string>> RenderValue(const goddag::Goddag& g,
                                             Result<Value> value) {
  CXML_RETURN_IF_ERROR(value.status());
  std::vector<std::string> out;
  if (value->is_node_set()) {
    out.reserve(value->nodes().size());
    for (const NodeEntry& e : value->nodes()) {
      out.push_back(Value::StringValue(g, e));
    }
  } else {
    out.push_back(value->ToString(g));
  }
  return out;
}

}  // namespace

Result<std::vector<std::string>> XPathEngine::EvaluateToStrings(
    std::string_view expression) {
  return RenderValue(*g_, Evaluate(expression));
}

Result<std::vector<std::string>> XPathEngine::EvaluateToStrings(
    const CompiledQuery& query) {
  return RenderValue(*g_, Evaluate(query));
}

}  // namespace cxml::xpath
