#include "xpath/engine.h"

namespace cxml::xpath {

Result<const Expr*> XPathEngine::ParseCached(std::string_view expression) {
  auto it = cache_.find(expression);
  if (it != cache_.end()) return static_cast<const Expr*>(it->second.get());
  CXML_ASSIGN_OR_RETURN(ExprPtr parsed, ParseXPath(expression));
  const Expr* raw = parsed.get();
  cache_.emplace(std::string(expression), std::move(parsed));
  return raw;
}

Result<Value> XPathEngine::Evaluate(std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(const Expr* expr, ParseCached(expression));
  return evaluator_.Evaluate(*expr);
}

Result<Value> XPathEngine::EvaluateFrom(std::string_view expression,
                                        goddag::NodeId context) {
  CXML_ASSIGN_OR_RETURN(const Expr* expr, ParseCached(expression));
  return evaluator_.Evaluate(*expr, NodeEntry::Of(context));
}

Result<std::vector<goddag::NodeId>> XPathEngine::SelectNodes(
    std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(Value value, Evaluate(expression));
  if (!value.is_node_set()) {
    return status::InvalidArgument(
        "XPath: expression does not evaluate to a node-set");
  }
  std::vector<goddag::NodeId> out;
  out.reserve(value.nodes().size());
  for (const NodeEntry& e : value.nodes()) {
    if (!e.is_document()) out.push_back(e.node);
  }
  return out;
}

Result<std::vector<std::string>> XPathEngine::EvaluateToStrings(
    std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(Value value, Evaluate(expression));
  std::vector<std::string> out;
  if (value.is_node_set()) {
    out.reserve(value.nodes().size());
    for (const NodeEntry& e : value.nodes()) {
      out.push_back(Value::StringValue(*g_, e));
    }
  } else {
    out.push_back(value.ToString(*g_));
  }
  return out;
}

}  // namespace cxml::xpath
