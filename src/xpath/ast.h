#ifndef CXML_XPATH_AST_H_
#define CXML_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace cxml::xpath {

/// Axes of the Extended XPath (paper §4 / TR 394-04): the 12 XPath 1.0
/// tree axes reinterpreted over the GODDAG, plus the `overlapping` family
/// that only makes sense with concurrent markup.
enum class AxisKind {
  kChild,
  kDescendant,
  kParent,
  kAncestor,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
  kAttribute,
  kSelf,
  kDescendantOrSelf,
  kAncestorOrSelf,
  // --- concurrent-markup extensions ---
  /// Elements whose extent properly overlaps the context node's.
  kOverlapping,
  /// Overlapping elements that *start inside* the context node
  /// (ctx.begin < n.begin < ctx.end < n.end).
  kOverlappingStart,
  /// Overlapping elements that *end inside* the context node
  /// (n.begin < ctx.begin < n.end < ctx.end).
  kOverlappingEnd,
};

const char* AxisKindToString(AxisKind axis);

/// True for axes whose proximity position counts backwards in document
/// order (XPath 1.0 §2.4).
bool IsReverseAxis(AxisKind axis);

/// Node test of a step.
struct NodeTest {
  enum class Kind {
    kName,     ///< element (or attribute) name
    kAnyName,  ///< *
    kText,     ///< text() — GODDAG leaves
    kNode,     ///< node() — any node
  };
  Kind kind = Kind::kAnyName;
  std::string name;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Static per-step plan, filled in by xpath::Compile's analysis pass
/// (compiled.h) after parsing. Default-constructed steps carry no plan
/// and evaluate exactly as before — the plan only ever *narrows* work
/// the evaluator would do anyway, so plan-less and planned evaluation
/// are equivalent by construction.
struct StepPlan {
  /// A leading positional predicate the indexed evaluator may push
  /// into the SnapshotIndex pool scan instead of materialising the
  /// full axis window first (descendant/child steps only).
  enum class Positional : uint8_t { kNone, kFirst, kLast };
  Positional positional = Positional::kNone;
  /// The axis consults (hierarchy, tag) pools on a SnapshotIndex
  /// (descendant, ancestor, following, preceding, overlapping family).
  bool uses_pools = false;
  /// False for steps the index cannot accelerate (child/parent/
  /// sibling/self/attribute walks) — the seam future per-step strategy
  /// choice hangs off.
  bool index_friendly = false;
};

/// One location step: axis(hierarchy)::test[pred]...
/// `hierarchy` is the paper's hierarchy qualifier; empty = all
/// hierarchies (the whole GODDAG).
struct Step {
  AxisKind axis = AxisKind::kChild;
  std::string hierarchy;
  NodeTest test;
  std::vector<ExprPtr> predicates;
  /// Filled by xpath::Compile (see StepPlan); inert when defaulted.
  StepPlan plan;
};

/// A location path.
struct LocationPath {
  bool absolute = false;
  std::vector<Step> steps;
};

/// Expression node. A tagged union kept simple and explicit (one struct,
/// unused fields empty) — the evaluator switches on `kind`.
struct Expr {
  enum class Kind {
    kOr,
    kAnd,
    kEquals,
    kNotEquals,
    kLess,
    kLessEq,
    kGreater,
    kGreaterEq,
    kAdd,
    kSubtract,
    kMultiply,
    kDivide,
    kModulo,
    kNegate,
    kUnion,
    kPath,        ///< a LocationPath
    kFilter,      ///< primary expr + predicates (+ optional trailing path)
    kLiteral,     ///< string literal
    kNumber,      ///< numeric literal
    kFunction,    ///< function call
    kVariable,    ///< $name
  };

  Kind kind;
  // kLiteral / kFunction / kVariable
  std::string string_value;
  // kNumber
  double number_value = 0;
  // Binary operands / kNegate child / kFunction args.
  std::vector<ExprPtr> children;
  // kPath; also the trailing path of kFilter (may be empty).
  LocationPath path;
  // kFilter predicates.
  std::vector<ExprPtr> predicates;

  explicit Expr(Kind k) : kind(k) {}

  static ExprPtr Binary(Kind k, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>(k);
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }
};

/// Debug rendering of an expression (stable, used in tests).
std::string ToString(const Expr& expr);
std::string ToString(const LocationPath& path);

}  // namespace cxml::xpath

#endif  // CXML_XPATH_AST_H_
