#include "xpath/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"
#include "common/unicode.h"
#include "xml/chars.h"

namespace cxml::xpath {

namespace {

bool IsNameStart(std::string_view s, size_t pos) {
  DecodedChar d = DecodeUtf8(s, pos);
  return d.valid() && d.code_point != ':' &&
         xml::IsNameStartChar(d.code_point);
}

}  // namespace

Result<std::vector<Token>> TokenizeXPath(std::string_view input) {
  std::vector<Token> tokens;
  size_t pos = 0;
  auto error = [&](std::string_view message) {
    return status::ParseError(StrFormat(
        "XPath: %s at offset %zu", std::string(message).c_str(), pos));
  };

  while (pos < input.size()) {
    char c = input[pos];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++pos;
      continue;
    }
    Token token;
    token.offset = pos;
    switch (c) {
      case '/':
        if (pos + 1 < input.size() && input[pos + 1] == '/') {
          token.kind = TokenKind::kDoubleSlash;
          pos += 2;
        } else {
          token.kind = TokenKind::kSlash;
          ++pos;
        }
        break;
      case ':':
        if (pos + 1 < input.size() && input[pos + 1] == ':') {
          token.kind = TokenKind::kAxisSep;
          pos += 2;
        } else {
          return error("single ':' (QNames with prefixes not supported)");
        }
        break;
      case '@':
        token.kind = TokenKind::kAt;
        ++pos;
        break;
      case '.':
        if (pos + 1 < input.size() && input[pos + 1] == '.') {
          token.kind = TokenKind::kDotDot;
          pos += 2;
        } else if (pos + 1 < input.size() &&
                   std::isdigit(static_cast<unsigned char>(input[pos + 1]))) {
          // .5 style number
          char* end = nullptr;
          token.kind = TokenKind::kNumber;
          token.number = std::strtod(input.data() + pos, &end);
          pos = static_cast<size_t>(end - input.data());
        } else {
          token.kind = TokenKind::kDot;
          ++pos;
        }
        break;
      case '(':
        token.kind = TokenKind::kLParen;
        ++pos;
        break;
      case ')':
        token.kind = TokenKind::kRParen;
        ++pos;
        break;
      case '[':
        token.kind = TokenKind::kLBracket;
        ++pos;
        break;
      case ']':
        token.kind = TokenKind::kRBracket;
        ++pos;
        break;
      case ',':
        token.kind = TokenKind::kComma;
        ++pos;
        break;
      case '|':
        token.kind = TokenKind::kPipe;
        ++pos;
        break;
      case '*':
        token.kind = TokenKind::kStar;
        ++pos;
        break;
      case '=':
        token.kind = TokenKind::kEq;
        ++pos;
        break;
      case '!':
        if (pos + 1 < input.size() && input[pos + 1] == '=') {
          token.kind = TokenKind::kNotEq;
          pos += 2;
        } else {
          return error("'!' without '='");
        }
        break;
      case '<':
        if (pos + 1 < input.size() && input[pos + 1] == '=') {
          token.kind = TokenKind::kLessEq;
          pos += 2;
        } else {
          token.kind = TokenKind::kLess;
          ++pos;
        }
        break;
      case '>':
        if (pos + 1 < input.size() && input[pos + 1] == '=') {
          token.kind = TokenKind::kGreaterEq;
          pos += 2;
        } else {
          token.kind = TokenKind::kGreater;
          ++pos;
        }
        break;
      case '+':
        token.kind = TokenKind::kPlus;
        ++pos;
        break;
      case '-':
        token.kind = TokenKind::kMinus;
        ++pos;
        break;
      case '"':
      case '\'': {
        size_t close = input.find(c, pos + 1);
        if (close == std::string_view::npos) {
          return error("unterminated string literal");
        }
        token.kind = TokenKind::kLiteral;
        token.text = std::string(input.substr(pos + 1, close - pos - 1));
        pos = close + 1;
        break;
      }
      case '$': {
        ++pos;
        if (pos >= input.size() || !IsNameStart(input, pos)) {
          return error("'$' must be followed by a variable name");
        }
        size_t begin = pos;
        while (pos < input.size()) {
          DecodedChar d = DecodeUtf8(input, pos);
          if (!d.valid() || d.code_point == ':' ||
              !xml::IsNameChar(d.code_point)) {
            break;
          }
          pos += d.length;
        }
        token.kind = TokenKind::kVariable;
        token.text = std::string(input.substr(begin, pos - begin));
        break;
      }
      default: {
        if (std::isdigit(static_cast<unsigned char>(c))) {
          char* end = nullptr;
          token.kind = TokenKind::kNumber;
          token.number = std::strtod(input.data() + pos, &end);
          pos = static_cast<size_t>(end - input.data());
          break;
        }
        if (IsNameStart(input, pos)) {
          size_t begin = pos;
          while (pos < input.size()) {
            DecodedChar d = DecodeUtf8(input, pos);
            if (!d.valid() || d.code_point == ':' ||
                !xml::IsNameChar(d.code_point)) {
              break;
            }
            pos += d.length;
          }
          token.kind = TokenKind::kName;
          token.text = std::string(input.substr(begin, pos - begin));
          break;
        }
        return error(StrCat("unexpected character '", std::string(1, c),
                            "'"));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = input.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace cxml::xpath
