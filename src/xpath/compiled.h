#ifndef CXML_XPATH_COMPILED_H_
#define CXML_XPATH_COMPILED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xpath/ast.h"

namespace cxml::xpath {

/// Stable 64-bit FNV-1a over a canonical query rendering — what the
/// service cache keys on. The canonical text always rides along in the
/// key, so a hash collision costs one extra string compare, never a
/// wrong result.
uint64_t CanonicalHash(std::string_view canonical);

/// A compiled Extended XPath query: parse + static analysis done once,
/// evaluated many times (compile-once/bind-many). The object is
/// immutable after Compile and document-independent, so one handle is
/// safely shared across threads, documents, and connections; only
/// *evaluation* needs an engine (and inherits that engine's exclusion
/// contract).
///
/// The analysis annotates every location step with a StepPlan (ast.h):
/// whether the step's axis runs on SnapshotIndex pools, whether the
/// index can help it at all, and whether a leading positional
/// predicate ([1] / [last()]) can be pushed into the pool scan. It
/// also records the query-level facts a cache or planner wants without
/// re-walking the AST: the canonical text (an AST re-rendering, so
/// whitespace and abbreviation variants of one query collapse to one
/// identity), its hash, and the referenced hierarchy qualifiers and
/// element tags.
class CompiledQuery {
 public:
  /// The expression text as given to Compile.
  const std::string& text() const { return text_; }
  /// Canonical AST rendering — the cache identity.
  const std::string& canonical() const { return canonical_; }
  uint64_t canonical_hash() const { return hash_; }
  /// Hierarchy qualifiers referenced anywhere in the query, sorted and
  /// deduplicated (names as written; resolution is per-document).
  const std::vector<std::string>& hierarchies() const {
    return hierarchies_;
  }
  /// Element/attribute name tests referenced anywhere, sorted and
  /// deduplicated.
  const std::vector<std::string>& tags() const { return tags_; }
  /// The analyzed AST (every Step carries its StepPlan).
  const Expr& expr() const { return *expr_; }

 private:
  friend Result<std::shared_ptr<const CompiledQuery>> Compile(
      std::string_view expression);

  CompiledQuery() = default;

  std::string text_;
  std::string canonical_;
  uint64_t hash_ = 0;
  std::vector<std::string> hierarchies_;
  std::vector<std::string> tags_;
  ExprPtr expr_;
};

using CompiledQueryPtr = std::shared_ptr<const CompiledQuery>;

/// Parses and analyzes an expression. Document-independent: unknown
/// hierarchies or tags only surface at evaluation time, exactly as on
/// the string path.
Result<CompiledQueryPtr> Compile(std::string_view expression);

/// The analysis pass alone: annotates every Step's plan in place and
/// optionally collects the referenced hierarchies/tags (pass nullptr
/// to skip). Exposed for the XQuery compiler, which parses embedded
/// expressions itself and wants the same plans on them.
void AnalyzeQuery(Expr* expr, std::vector<std::string>* hierarchies,
                  std::vector<std::string>* tags);

}  // namespace cxml::xpath

#endif  // CXML_XPATH_COMPILED_H_
