#ifndef CXML_XPATH_ENGINE_H_
#define CXML_XPATH_ENGINE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace cxml::xpath {

/// Facade over parser + evaluator with a bounded per-expression parse
/// cache — the "Extended XPath engine" a framework user touches (paper
/// §4: "an efficient implementation of the Extended XPath").
///
/// Engines may now live as long as a document snapshot (see
/// service::DocumentSnapshot), so the parse cache is a small LRU
/// instead of growing with every distinct expression ever seen.
class XPathEngine {
 public:
  /// Default parse-cache capacity: generous for any realistic working
  /// set of expressions per document, small enough that a snapshot-
  /// resident engine stays O(1) memory under adversarial query streams.
  static constexpr size_t kDefaultParseCacheCapacity = 128;

  /// `g` must outlive the engine.
  explicit XPathEngine(const goddag::Goddag& g,
                       size_t parse_cache_capacity =
                           kDefaultParseCacheCapacity)
      : g_(&g),
        evaluator_(g),
        cache_capacity_(parse_cache_capacity == 0 ? 1
                                                  : parse_cache_capacity) {}

  /// Evaluates against the document node.
  Result<Value> Evaluate(std::string_view expression);
  /// Evaluates with an explicit context node.
  Result<Value> EvaluateFrom(std::string_view expression,
                             goddag::NodeId context);

  /// Evaluates a pre-parsed expression (used by the XQuery engine, which
  /// compiles embedded expressions once and runs them per tuple).
  Result<Value> EvaluateExpr(const Expr& expr) {
    return evaluator_.Evaluate(expr);
  }

  /// Convenience: evaluates and requires a node-set; returns the GODDAG
  /// nodes (attribute entries resolve to their owning node).
  Result<std::vector<goddag::NodeId>> SelectNodes(
      std::string_view expression);

  /// Evaluates and renders the value for transport: a node-set becomes
  /// one string-value per entry (document order), a scalar one item.
  /// NodeIds never cross this boundary, so results stay meaningful after
  /// the snapshot that produced them is gone — the representation the
  /// service layer caches.
  Result<std::vector<std::string>> EvaluateToStrings(
      std::string_view expression);

  /// Binds $name for subsequent evaluations.
  void SetVariable(const std::string& name, Value value) {
    evaluator_.SetVariable(name, std::move(value));
  }

  /// Adopts a prebuilt goddag::SnapshotIndex shared across engines
  /// pinned to the same immutable snapshot (the index is read-only, so
  /// sharing is thread-safe even though each engine is not).
  void UseSnapshotIndex(
      std::shared_ptr<const goddag::SnapshotIndex> index) {
    evaluator_.SetSnapshotIndex(std::move(index));
  }

  /// Selects indexed vs naive-scan axes (see xpath::AxisStrategy); the
  /// naive path is the equivalence oracle for the indexed one.
  void SetAxisStrategy(AxisStrategy strategy) {
    evaluator_.SetAxisStrategy(strategy);
  }

  /// Call after mutating the GODDAG: clears evaluator indexes (the parse
  /// cache stays — expressions do not depend on the instance).
  void InvalidateIndexes() { evaluator_.Reset(); }

  size_t cache_size() const { return lru_.size(); }
  size_t parse_cache_capacity() const { return cache_capacity_; }

 private:
  /// Returns the parsed expression, MRU-promoting it. The pointer is
  /// owned by the cache and stays valid until `cache_capacity_` newer
  /// distinct expressions evict it — callers use it within the same
  /// evaluation, never across ParseCached calls.
  Result<const Expr*> ParseCached(std::string_view expression);

  const goddag::Goddag* g_;
  Evaluator evaluator_;
  /// LRU list (front = most recent) + view-keyed map into it. The
  /// string_view keys point at the list nodes' strings, which never
  /// move (list nodes are stable).
  std::list<std::pair<std::string, ExprPtr>> lru_;
  std::map<std::string_view,
           std::list<std::pair<std::string, ExprPtr>>::iterator>
      cache_;
  size_t cache_capacity_;
};

}  // namespace cxml::xpath

#endif  // CXML_XPATH_ENGINE_H_
