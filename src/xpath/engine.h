#ifndef CXML_XPATH_ENGINE_H_
#define CXML_XPATH_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace cxml::xpath {

/// Facade over parser + evaluator with a per-expression parse cache —
/// the "Extended XPath engine" a framework user touches (paper §4:
/// "an efficient implementation of the Extended XPath").
class XPathEngine {
 public:
  /// `g` must outlive the engine.
  explicit XPathEngine(const goddag::Goddag& g)
      : g_(&g), evaluator_(g) {}

  /// Evaluates against the document node.
  Result<Value> Evaluate(std::string_view expression);
  /// Evaluates with an explicit context node.
  Result<Value> EvaluateFrom(std::string_view expression,
                             goddag::NodeId context);

  /// Evaluates a pre-parsed expression (used by the XQuery engine, which
  /// compiles embedded expressions once and runs them per tuple).
  Result<Value> EvaluateExpr(const Expr& expr) {
    return evaluator_.Evaluate(expr);
  }

  /// Convenience: evaluates and requires a node-set; returns the GODDAG
  /// nodes (attribute entries resolve to their owning node).
  Result<std::vector<goddag::NodeId>> SelectNodes(
      std::string_view expression);

  /// Evaluates and renders the value for transport: a node-set becomes
  /// one string-value per entry (document order), a scalar one item.
  /// NodeIds never cross this boundary, so results stay meaningful after
  /// the snapshot that produced them is gone — the representation the
  /// service layer caches.
  Result<std::vector<std::string>> EvaluateToStrings(
      std::string_view expression);

  /// Binds $name for subsequent evaluations.
  void SetVariable(const std::string& name, Value value) {
    evaluator_.SetVariable(name, std::move(value));
  }

  /// Call after mutating the GODDAG: clears evaluator indexes (the parse
  /// cache stays — expressions do not depend on the instance).
  void InvalidateIndexes() { evaluator_.Reset(); }

  size_t cache_size() const { return cache_.size(); }

 private:
  Result<const Expr*> ParseCached(std::string_view expression);

  const goddag::Goddag* g_;
  Evaluator evaluator_;
  std::map<std::string, ExprPtr, std::less<>> cache_;
};

}  // namespace cxml::xpath

#endif  // CXML_XPATH_ENGINE_H_
