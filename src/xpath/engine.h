#ifndef CXML_XPATH_ENGINE_H_
#define CXML_XPATH_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/lru_cache.h"
#include "xpath/compiled.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace cxml::xpath {

/// Facade over parser + evaluator — the "Extended XPath engine" a
/// framework user touches (paper §4: "an efficient implementation of
/// the Extended XPath").
///
/// The query API is compile-once/bind-many: `Prepare` (or the free
/// `xpath::Compile`) turns an expression into an immutable, document-
/// independent CompiledQuery once, and the Evaluate* overloads taking
/// the compiled form run it without any per-call parse or hash work.
/// The string overloads are thin wrappers that fetch the compiled form
/// from a bounded LRU parse cache (engines may live as long as a
/// document snapshot — see service::DocumentSnapshot — so the cache
/// must stay O(1) under adversarial query streams).
class XPathEngine {
 public:
  /// Default parse-cache capacity: generous for any realistic working
  /// set of expressions per document, small enough that a snapshot-
  /// resident engine stays O(1) memory under adversarial query streams.
  static constexpr size_t kDefaultParseCacheCapacity = 128;

  /// `g` must outlive the engine.
  explicit XPathEngine(const goddag::Goddag& g,
                       size_t parse_cache_capacity =
                           kDefaultParseCacheCapacity)
      : g_(&g), evaluator_(g), cache_(parse_cache_capacity) {}

  /// Compiles an expression for this engine's dialect. Document-
  /// independent and stateless — provided on the engine for symmetry
  /// with the service API; identical to the free xpath::Compile.
  static Result<CompiledQueryPtr> Prepare(std::string_view expression) {
    return Compile(expression);
  }

  /// Evaluates against the document node.
  Result<Value> Evaluate(std::string_view expression);
  Result<Value> Evaluate(const CompiledQuery& query) {
    return evaluator_.Evaluate(query.expr());
  }
  /// Evaluates with an explicit context node.
  Result<Value> EvaluateFrom(std::string_view expression,
                             goddag::NodeId context);
  Result<Value> EvaluateFrom(const CompiledQuery& query,
                             goddag::NodeId context) {
    return evaluator_.Evaluate(query.expr(), NodeEntry::Of(context));
  }

  /// Evaluates a pre-parsed expression (used by the XQuery engine, which
  /// compiles embedded expressions once and runs them per tuple).
  Result<Value> EvaluateExpr(const Expr& expr) {
    return evaluator_.Evaluate(expr);
  }

  /// Convenience: evaluates and requires a node-set; returns the GODDAG
  /// nodes (attribute entries resolve to their owning node).
  Result<std::vector<goddag::NodeId>> SelectNodes(
      std::string_view expression);

  /// Evaluates and renders the value for transport: a node-set becomes
  /// one string-value per entry (document order), a scalar one item.
  /// NodeIds never cross this boundary, so results stay meaningful after
  /// the snapshot that produced them is gone — the representation the
  /// service layer caches.
  Result<std::vector<std::string>> EvaluateToStrings(
      std::string_view expression);
  Result<std::vector<std::string>> EvaluateToStrings(
      const CompiledQuery& query);

  /// Binds $name for subsequent evaluations.
  void SetVariable(const std::string& name, Value value) {
    evaluator_.SetVariable(name, std::move(value));
  }

  /// Adopts a prebuilt goddag::SnapshotIndex shared across engines
  /// pinned to the same immutable snapshot (the index is read-only, so
  /// sharing is thread-safe even though each engine is not).
  void UseSnapshotIndex(
      std::shared_ptr<const goddag::SnapshotIndex> index) {
    evaluator_.SetSnapshotIndex(std::move(index));
  }

  /// Selects indexed vs naive-scan axes (see xpath::AxisStrategy); the
  /// naive path is the equivalence oracle for the indexed one.
  void SetAxisStrategy(AxisStrategy strategy) {
    evaluator_.SetAxisStrategy(strategy);
  }

  /// Enables/disables pushing compiled positional predicates into the
  /// SnapshotIndex pool scans (on by default; the off position is the
  /// window-materialising oracle the benches compare against).
  void SetPositionalPushdown(bool enabled) {
    evaluator_.SetPositionalPushdown(enabled);
  }

  /// Call after mutating the GODDAG: clears evaluator indexes (the parse
  /// cache stays — expressions do not depend on the instance).
  void InvalidateIndexes() { evaluator_.Reset(); }

  /// Axis-strategy tallies since the last reset (see xpath::AxisStats).
  /// The service layer brackets an evaluation with Reset/read to
  /// attribute strategy choices to a single query.
  const AxisStats& axis_stats() const { return evaluator_.axis_stats(); }
  void ResetAxisStats() { evaluator_.ResetAxisStats(); }

  size_t cache_size() const { return cache_.size(); }
  size_t parse_cache_capacity() const { return cache_.capacity(); }

 private:
  /// Returns the compiled expression, MRU-promoting it. The pointer is
  /// owned by the cache and stays valid until `cache_capacity` newer
  /// distinct expressions evict it — callers use it within the same
  /// evaluation, never across ParseCached calls.
  Result<const CompiledQuery*> ParseCached(std::string_view expression);

  const goddag::Goddag* g_;
  Evaluator evaluator_;
  /// Bounded LRU of compiled expressions keyed by the raw text (the
  /// canonical form would save duplicate entries for whitespace
  /// variants, but would put a full parse on the hot string path —
  /// canonical sharing belongs to the service's result cache).
  StringLruCache<CompiledQueryPtr> cache_;
};

}  // namespace cxml::xpath

#endif  // CXML_XPATH_ENGINE_H_
