#include "xpath/ast.h"

#include "common/strings.h"

namespace cxml::xpath {

const char* AxisKindToString(AxisKind axis) {
  switch (axis) {
    case AxisKind::kChild:
      return "child";
    case AxisKind::kDescendant:
      return "descendant";
    case AxisKind::kParent:
      return "parent";
    case AxisKind::kAncestor:
      return "ancestor";
    case AxisKind::kFollowingSibling:
      return "following-sibling";
    case AxisKind::kPrecedingSibling:
      return "preceding-sibling";
    case AxisKind::kFollowing:
      return "following";
    case AxisKind::kPreceding:
      return "preceding";
    case AxisKind::kAttribute:
      return "attribute";
    case AxisKind::kSelf:
      return "self";
    case AxisKind::kDescendantOrSelf:
      return "descendant-or-self";
    case AxisKind::kAncestorOrSelf:
      return "ancestor-or-self";
    case AxisKind::kOverlapping:
      return "overlapping";
    case AxisKind::kOverlappingStart:
      return "overlapping-start";
    case AxisKind::kOverlappingEnd:
      return "overlapping-end";
  }
  return "?";
}

bool IsReverseAxis(AxisKind axis) {
  return axis == AxisKind::kParent || axis == AxisKind::kAncestor ||
         axis == AxisKind::kAncestorOrSelf ||
         axis == AxisKind::kPreceding ||
         axis == AxisKind::kPrecedingSibling;
}

namespace {

std::string TestToString(const NodeTest& test) {
  switch (test.kind) {
    case NodeTest::Kind::kName:
      return test.name;
    case NodeTest::Kind::kAnyName:
      return "*";
    case NodeTest::Kind::kText:
      return "text()";
    case NodeTest::Kind::kNode:
      return "node()";
  }
  return "?";
}

std::string StepToString(const Step& step) {
  std::string out(AxisKindToString(step.axis));
  if (!step.hierarchy.empty()) out += StrCat("(", step.hierarchy, ")");
  out += "::";
  out += TestToString(step.test);
  for (const auto& pred : step.predicates) {
    out += StrCat("[", ToString(*pred), "]");
  }
  return out;
}

const char* BinaryOp(Expr::Kind kind) {
  switch (kind) {
    case Expr::Kind::kOr:
      return " or ";
    case Expr::Kind::kAnd:
      return " and ";
    case Expr::Kind::kEquals:
      return "=";
    case Expr::Kind::kNotEquals:
      return "!=";
    case Expr::Kind::kLess:
      return "<";
    case Expr::Kind::kLessEq:
      return "<=";
    case Expr::Kind::kGreater:
      return ">";
    case Expr::Kind::kGreaterEq:
      return ">=";
    case Expr::Kind::kAdd:
      return "+";
    case Expr::Kind::kSubtract:
      return "-";
    case Expr::Kind::kMultiply:
      return "*";
    case Expr::Kind::kDivide:
      return " div ";
    case Expr::Kind::kModulo:
      return " mod ";
    case Expr::Kind::kUnion:
      return "|";
    default:
      return "?";
  }
}

}  // namespace

std::string ToString(const LocationPath& path) {
  std::string out;
  if (path.absolute) out += "/";
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) out += "/";
    out += StepToString(path.steps[i]);
  }
  return out;
}

std::string ToString(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kOr:
    case Expr::Kind::kAnd:
    case Expr::Kind::kEquals:
    case Expr::Kind::kNotEquals:
    case Expr::Kind::kLess:
    case Expr::Kind::kLessEq:
    case Expr::Kind::kGreater:
    case Expr::Kind::kGreaterEq:
    case Expr::Kind::kAdd:
    case Expr::Kind::kSubtract:
    case Expr::Kind::kMultiply:
    case Expr::Kind::kDivide:
    case Expr::Kind::kModulo:
    case Expr::Kind::kUnion:
      return StrCat("(", ToString(*expr.children[0]), BinaryOp(expr.kind),
                    ToString(*expr.children[1]), ")");
    case Expr::Kind::kNegate:
      return StrCat("-", ToString(*expr.children[0]));
    case Expr::Kind::kPath:
      return ToString(expr.path);
    case Expr::Kind::kFilter: {
      std::string out = StrCat("(", ToString(*expr.children[0]), ")");
      for (const auto& pred : expr.predicates) {
        out += StrCat("[", ToString(*pred), "]");
      }
      if (!expr.path.steps.empty()) {
        out += StrCat("/", ToString(expr.path));
      }
      return out;
    }
    case Expr::Kind::kLiteral: {
      // The rendering doubles as the compiled-query canonical identity
      // (xpath::Compile), so it must be injective: escape the quote and
      // the escape itself. The result is an identity/debug string, not
      // re-parseable source.
      std::string out = "'";
      for (char c : expr.string_value) {
        if (c == '\'' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('\'');
      return out;
    }
    case Expr::Kind::kNumber: {
      // %.17g round-trips every double, so distinct numeric literals
      // never collapse to one canonical text (%g's 6 significant
      // digits would merge e.g. 1000000 and 1000001 into "1e+06").
      std::string n = StrFormat("%.17g", expr.number_value);
      return n;
    }
    case Expr::Kind::kFunction: {
      std::string out = StrCat(expr.string_value, "(");
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out += ",";
        out += ToString(*expr.children[i]);
      }
      out += ")";
      return out;
    }
    case Expr::Kind::kVariable:
      return StrCat("$", expr.string_value);
  }
  return "?";
}

}  // namespace cxml::xpath
