#include "xpath/compiled.h"

#include <algorithm>

#include "xpath/parser.h"

namespace cxml::xpath {

uint64_t CanonicalHash(std::string_view canonical) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

namespace {

/// True when the axis runs on SnapshotIndex (hierarchy, tag) pools —
/// the global axes the index accelerates.
bool AxisUsesPools(AxisKind axis) {
  switch (axis) {
    case AxisKind::kDescendant:
    case AxisKind::kDescendantOrSelf:
    case AxisKind::kAncestor:
    case AxisKind::kAncestorOrSelf:
    case AxisKind::kFollowing:
    case AxisKind::kPreceding:
    case AxisKind::kOverlapping:
    case AxisKind::kOverlappingStart:
    case AxisKind::kOverlappingEnd:
      return true;
    default:
      return false;
  }
}

/// Classifies a step's leading predicate as a pushable positional
/// selection: exactly the literal `1` or the bare `last()` call.
StepPlan::Positional LeadingPositional(const Step& step) {
  if (step.predicates.empty()) return StepPlan::Positional::kNone;
  const Expr& pred = *step.predicates.front();
  if (pred.kind == Expr::Kind::kNumber && pred.number_value == 1.0) {
    return StepPlan::Positional::kFirst;
  }
  if (pred.kind == Expr::Kind::kFunction && pred.string_value == "last" &&
      pred.children.empty()) {
    return StepPlan::Positional::kLast;
  }
  return StepPlan::Positional::kNone;
}

struct Analysis {
  std::vector<std::string>* hierarchies;
  std::vector<std::string>* tags;
};

void AnalyzeExpr(Expr* expr, const Analysis& a);

void AnalyzePath(LocationPath* path, const Analysis& a) {
  for (Step& step : path->steps) {
    step.plan.uses_pools = AxisUsesPools(step.axis);
    step.plan.index_friendly = step.plan.uses_pools;
    // Positional pushdown is defined for the forward containment steps
    // only: descendant selects from a pool window in document order,
    // child from the (small) children list. [1]/[last()] elsewhere
    // still evaluate the ordinary way.
    if (step.axis == AxisKind::kDescendant ||
        step.axis == AxisKind::kChild) {
      step.plan.positional = LeadingPositional(step);
    }
    if (a.hierarchies != nullptr && !step.hierarchy.empty()) {
      a.hierarchies->push_back(step.hierarchy);
    }
    if (a.tags != nullptr && step.test.kind == NodeTest::Kind::kName) {
      a.tags->push_back(step.test.name);
    }
    for (ExprPtr& pred : step.predicates) AnalyzeExpr(pred.get(), a);
  }
}

void AnalyzeExpr(Expr* expr, const Analysis& a) {
  if (expr == nullptr) return;
  for (ExprPtr& child : expr->children) AnalyzeExpr(child.get(), a);
  for (ExprPtr& pred : expr->predicates) AnalyzeExpr(pred.get(), a);
  AnalyzePath(&expr->path, a);
}

void SortUnique(std::vector<std::string>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

void AnalyzeQuery(Expr* expr, std::vector<std::string>* hierarchies,
                  std::vector<std::string>* tags) {
  AnalyzeExpr(expr, Analysis{hierarchies, tags});
  if (hierarchies != nullptr) SortUnique(hierarchies);
  if (tags != nullptr) SortUnique(tags);
}

Result<CompiledQueryPtr> Compile(std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(ExprPtr parsed, ParseXPath(expression));
  auto compiled = std::shared_ptr<CompiledQuery>(new CompiledQuery());
  compiled->text_ = std::string(expression);
  AnalyzeQuery(parsed.get(), &compiled->hierarchies_, &compiled->tags_);
  compiled->canonical_ = ToString(*parsed);
  compiled->hash_ = CanonicalHash(compiled->canonical_);
  compiled->expr_ = std::move(parsed);
  return CompiledQueryPtr(std::move(compiled));
}

}  // namespace cxml::xpath
