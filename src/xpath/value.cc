#include "xpath/value.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace cxml::xpath {

bool Value::ToBoolean() const {
  switch (type_) {
    case Type::kNodeSet:
      return !nodes_.empty();
    case Type::kBoolean:
      return boolean_;
    case Type::kNumber:
      return number_ != 0 && !std::isnan(number_);
    case Type::kString:
      return !string_.empty();
  }
  return false;
}

double Value::ToNumber(const goddag::Goddag& g) const {
  switch (type_) {
    case Type::kNodeSet:
    case Type::kString:
      return ParseXPathNumber(ToString(g));
    case Type::kBoolean:
      return boolean_ ? 1.0 : 0.0;
    case Type::kNumber:
      return number_;
  }
  return std::nan("");
}

std::string Value::ToString(const goddag::Goddag& g) const {
  switch (type_) {
    case Type::kNodeSet: {
      if (nodes_.empty()) return "";
      // First in document order.
      NodeEntry first = nodes_.front();
      for (const NodeEntry& e : nodes_) {
        if (DocBefore(g, e, first)) first = e;
      }
      return StringValue(g, first);
    }
    case Type::kBoolean:
      return boolean_ ? "true" : "false";
    case Type::kNumber:
      return FormatXPathNumber(number_);
    case Type::kString:
      return string_;
  }
  return "";
}

std::string Value::StringValue(const goddag::Goddag& g,
                               const NodeEntry& entry) {
  if (entry.is_document()) return g.content();
  if (entry.is_attribute()) {
    const auto& attrs = g.attributes(entry.node);
    if (entry.attr < static_cast<int32_t>(attrs.size())) {
      return attrs[static_cast<size_t>(entry.attr)].value;
    }
    return "";
  }
  return std::string(g.text(entry.node));
}

bool Value::DocBefore(const goddag::Goddag& g, const NodeEntry& a,
                      const NodeEntry& b) {
  if (a.is_document() != b.is_document()) return a.is_document();
  if (a.node != b.node) return g.Before(a.node, b.node);
  return a.attr < b.attr;
}

void Value::Normalize(const goddag::Goddag& g, NodeSet* set) {
  std::sort(set->begin(), set->end(),
            [&](const NodeEntry& a, const NodeEntry& b) {
              return DocBefore(g, a, b);
            });
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

double ParseXPathNumber(std::string_view s) {
  std::string_view stripped = StripWhitespace(s);
  if (stripped.empty()) return std::nan("");
  // XPath Number ::= '-'? Digits ('.' Digits?)? | '-'? '.' Digits
  size_t i = 0;
  if (stripped[i] == '-') ++i;
  bool any_digit = false;
  while (i < stripped.size() && stripped[i] >= '0' && stripped[i] <= '9') {
    ++i;
    any_digit = true;
  }
  if (i < stripped.size() && stripped[i] == '.') {
    ++i;
    while (i < stripped.size() && stripped[i] >= '0' && stripped[i] <= '9') {
      ++i;
      any_digit = true;
    }
  }
  if (!any_digit || i != stripped.size()) return std::nan("");
  return std::strtod(std::string(stripped).c_str(), nullptr);
}

std::string FormatXPathNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  if (value == 0) return std::signbit(value) ? "0" : "0";
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  std::string out = StrFormat("%.12g", value);
  return out;
}

}  // namespace cxml::xpath
