#ifndef CXML_XPATH_PARSER_H_
#define CXML_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace cxml::xpath {

/// Parses an Extended XPath expression into an AST.
///
/// Grammar: XPath 1.0 (location paths, the 13 axes, predicates, the usual
/// expression operators and abbreviations) with two extensions:
///   * the `overlapping`, `overlapping-start`, `overlapping-end` axes,
///   * hierarchy qualifiers on any axis: `child(physical)::line`.
Result<ExprPtr> ParseXPath(std::string_view expression);

}  // namespace cxml::xpath

#endif  // CXML_XPATH_PARSER_H_
