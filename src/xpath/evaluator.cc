#include "xpath/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace cxml::xpath {

using goddag::Goddag;
using goddag::HierarchyId;
using goddag::kInvalidHierarchy;
using goddag::kInvalidNode;
using goddag::NodeId;

void Evaluator::SetVariable(const std::string& name, Value value) {
  variables_.insert_or_assign(name, std::move(value));
}

const goddag::SnapshotIndex& Evaluator::index() {
  if (index_ == nullptr) {
    index_ = std::make_shared<const goddag::SnapshotIndex>(*g_);
  }
  return *index_;
}

std::string AxisStats::Summary() const {
  return StrFormat("indexed=%llu naive=%llu pushdown=%llu pool_nodes=%llu",
                   static_cast<unsigned long long>(indexed_axes),
                   static_cast<unsigned long long>(naive_axes),
                   static_cast<unsigned long long>(pushdown_axes),
                   static_cast<unsigned long long>(pool_nodes));
}

const goddag::SnapshotIndex::Pool& Evaluator::ElementPoolFor(
    HierarchyId hq, const NodeTest& test) {
  const goddag::SnapshotIndex::Pool& pool =
      index().Elements(hq, test.kind == NodeTest::Kind::kName
                               ? std::string_view(test.name)
                               : std::string_view());
  stats_.pool_nodes += pool.nodes.size();
  return pool;
}

void Evaluator::NormalizeSet(NodeSet* set) {
  if (index_ == nullptr) {
    Value::Normalize(*g_, set);
    return;
  }
  const goddag::SnapshotIndex& idx = *index_;
  std::sort(set->begin(), set->end(),
            [this, &idx](const NodeEntry& a, const NodeEntry& b) {
              if (a.is_document() != b.is_document()) return a.is_document();
              if (a.node != b.node) {
                uint32_t ra = idx.rank(a.node);
                uint32_t rb = idx.rank(b.node);
                if (ra != rb) return ra < rb;
                // Both detached (kUnranked): structural fallback keeps
                // the order total and identical to Value::Normalize.
                return g_->Before(a.node, b.node);
              }
              return a.attr < b.attr;
            });
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

Result<Value> Evaluator::Evaluate(const Expr& expr, NodeEntry context) {
  Context ctx;
  ctx.node = context;
  return EvalExpr(expr, ctx);
}

Result<HierarchyId> Evaluator::ResolveHierarchy(
    const std::string& name) const {
  if (name.empty()) return kInvalidHierarchy;  // "all hierarchies"
  if (g_->cmh() != nullptr) {
    HierarchyId id = g_->cmh()->FindIdByName(name);
    if (id != kInvalidHierarchy) return id;
    return status::InvalidArgument(
        StrCat("XPath: unknown hierarchy '", name, "'"));
  }
  // Without a CMH, allow numeric hierarchy ids.
  HierarchyId id = 0;
  for (char c : name) {
    if (c < '0' || c > '9') {
      return status::InvalidArgument(
          StrCat("XPath: unknown hierarchy '", name,
                 "' (no CMH bound; use numeric ids)"));
    }
    id = id * 10 + static_cast<HierarchyId>(c - '0');
  }
  if (id >= g_->num_hierarchies()) {
    return status::InvalidArgument(
        StrCat("XPath: hierarchy index '", name, "' out of range"));
  }
  return id;
}

bool Evaluator::MatchesTest(const NodeTest& test, const NodeEntry& entry,
                            bool attribute_axis) const {
  if (attribute_axis) {
    if (!entry.is_attribute()) return false;
    switch (test.kind) {
      case NodeTest::Kind::kName: {
        const auto& attrs = g_->attributes(entry.node);
        return entry.attr < static_cast<int32_t>(attrs.size()) &&
               attrs[static_cast<size_t>(entry.attr)].name == test.name;
      }
      case NodeTest::Kind::kAnyName:
      case NodeTest::Kind::kNode:
        return true;
      case NodeTest::Kind::kText:
        return false;
    }
    return false;
  }
  if (entry.is_attribute()) return false;
  if (entry.is_document()) return test.kind == NodeTest::Kind::kNode;
  switch (test.kind) {
    case NodeTest::Kind::kName:
      return !g_->is_leaf(entry.node) && g_->tag(entry.node) == test.name;
    case NodeTest::Kind::kAnyName:
      return !g_->is_leaf(entry.node);
    case NodeTest::Kind::kText:
      return g_->is_leaf(entry.node);
    case NodeTest::Kind::kNode:
      return true;
  }
  return false;
}

namespace {

/// Element candidates can satisfy the step's node test (everything but
/// text()); when true, the indexed path consults the element pool
/// matching the hierarchy qualifier and name test.
bool TestWantsElements(const NodeTest& test) {
  return test.kind != NodeTest::Kind::kText;
}

/// Leaf candidates can satisfy the step's node test (text() or node()).
bool TestWantsLeaves(const NodeTest& test) {
  return test.kind == NodeTest::Kind::kText ||
         test.kind == NodeTest::Kind::kNode;
}

/// True when `anc` is reachable from `node` through parent links (any
/// hierarchy for leaves). Used only to disambiguate equal extents.
bool IsTreeAncestor(const Goddag& g, NodeId anc, NodeId node) {
  std::vector<NodeId> frontier;
  if (g.is_leaf(node)) {
    for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
      frontier.push_back(g.leaf_parent(node, h));
    }
  } else if (g.is_element(node)) {
    frontier.push_back(g.parent(node));
  }
  while (!frontier.empty()) {
    NodeId n = frontier.back();
    frontier.pop_back();
    if (n == kInvalidNode) continue;
    if (n == anc) return true;
    if (g.is_element(n)) frontier.push_back(g.parent(n));
  }
  return false;
}

/// Containment with equal-extent disambiguation: `inner` is dominated by
/// `outer` when its extent is strictly inside, or extents are equal and
/// `outer` is a tree ancestor.
bool Dominates(const Goddag& g, NodeId outer, NodeId inner) {
  if (outer == inner) return false;
  Interval o = g.char_range(outer);
  Interval i = g.char_range(inner);
  if (!o.Contains(i)) return false;
  if (o == i) return IsTreeAncestor(g, outer, inner);
  return true;
}

}  // namespace

Result<NodeSet> Evaluator::AxisNodes(const Step& step, const NodeEntry& ctx) {
  CXML_ASSIGN_OR_RETURN(HierarchyId hq, ResolveHierarchy(step.hierarchy));
  const bool all_h = (hq == kInvalidHierarchy);
  const bool attr_axis = step.axis == AxisKind::kAttribute;
  NodeSet out;
  auto add = [&](NodeEntry e) {
    if (MatchesTest(step.test, e, attr_axis)) out.push_back(e);
  };
  auto add_node = [&](NodeId id) { add(NodeEntry::Of(id)); };
  /// Element passes the hierarchy qualifier?
  auto h_ok = [&](NodeId id) {
    return all_h || !g_->is_element(id) || g_->hierarchy(id) == hq;
  };

  switch (step.axis) {
    case AxisKind::kAttribute: {
      if (ctx.is_attribute() || ctx.is_document()) break;
      const auto& attrs = g_->attributes(ctx.node);
      for (size_t i = 0; i < attrs.size(); ++i) {
        add(NodeEntry::Attr(ctx.node, static_cast<int32_t>(i)));
      }
      break;
    }

    case AxisKind::kSelf:
      if (!ctx.is_attribute() || step.test.kind == NodeTest::Kind::kNode) {
        if (ctx.is_attribute()) {
          out.push_back(ctx);
        } else {
          add(ctx);
        }
      }
      break;

    case AxisKind::kChild: {
      if (ctx.is_attribute()) break;
      if (ctx.is_document()) {
        add_node(g_->root());
        break;
      }
      if (g_->is_root(ctx.node)) {
        if (all_h) {
          for (HierarchyId h = 0; h < g_->num_hierarchies(); ++h) {
            for (NodeId c : g_->root_children(h)) add_node(c);
          }
        } else {
          for (NodeId c : g_->root_children(hq)) add_node(c);
        }
      } else if (g_->is_element(ctx.node)) {
        if (all_h || g_->hierarchy(ctx.node) == hq) {
          for (NodeId c : g_->children(ctx.node)) add_node(c);
        }
      }
      break;
    }

    case AxisKind::kDescendant:
    case AxisKind::kDescendantOrSelf: {
      if (ctx.is_attribute()) break;
      if (step.axis == AxisKind::kDescendantOrSelf) add(ctx);
      // Compiled positional pushdown (plan only ever set on plain
      // kDescendant): pick the window's document-order first/last node
      // straight from the pools instead of materialising the window —
      // the singleton then passes the [1]/[last()] predicate trivially.
      const bool push_first =
          step.plan.positional == StepPlan::Positional::kFirst;
      NodeId best = kInvalidNode;
      auto consider = [&](NodeId n) {
        if (n == kInvalidNode) return;
        if (best == kInvalidNode ||
            (push_first ? index().Before(n, best)
                        : index().Before(best, n))) {
          best = n;
        }
      };
      if (ctx.is_document()) {
        add_node(g_->root());
        if (strategy_ == AxisStrategy::kIndexed && UsePositional(step)) {
          ++stats_.pushdown_axes;
          // The root is document-order first; any pool node beats it
          // for [last()].
          if (push_first && !out.empty()) break;
          if (TestWantsElements(step.test)) {
            const auto& pool = ElementPoolFor(hq, step.test);
            if (!pool.empty()) {
              consider(push_first ? pool.nodes.front() : pool.nodes.back());
            }
          }
          if (TestWantsLeaves(step.test)) {
            const auto& leaves = index().Leaves();
            if (!leaves.empty()) {
              consider(push_first ? leaves.nodes.front()
                                  : leaves.nodes.back());
            }
          }
          if (best != kInvalidNode) {
            out.clear();
            out.push_back(NodeEntry::Of(best));
          }
          break;
        }
        if (strategy_ == AxisStrategy::kIndexed) {
          ++stats_.indexed_axes;
          // Whole pools: already restricted to hierarchy + name test.
          if (TestWantsElements(step.test)) {
            for (NodeId e : ElementPoolFor(hq, step.test).nodes) {
              out.push_back(NodeEntry::Of(e));
            }
          }
          if (TestWantsLeaves(step.test)) {
            for (NodeId leaf : index().Leaves().nodes) {
              out.push_back(NodeEntry::Of(leaf));
            }
          }
        } else {
          ++stats_.naive_axes;
          for (NodeId e : g_->AllElements()) {
            if (h_ok(e)) add_node(e);
          }
          for (NodeId leaf : g_->leaves()) add_node(leaf);
        }
        break;
      }
      if (strategy_ == AxisStrategy::kIndexed) {
        if (UsePositional(step)) {
          ++stats_.pushdown_axes;
          if (TestWantsElements(step.test)) {
            const auto& pool = ElementPoolFor(hq, step.test);
            consider(push_first ? index().DominatedFirst(pool, ctx.node)
                                : index().DominatedLast(pool, ctx.node));
          }
          if (TestWantsLeaves(step.test)) {
            const auto& leaves = index().Leaves();
            consider(push_first
                         ? index().ContainedFirst(leaves, ctx.node)
                         : index().ContainedLast(leaves, ctx.node));
          }
          if (best != kInvalidNode) out.push_back(NodeEntry::Of(best));
          break;
        }
        ++stats_.indexed_axes;
        scratch_.clear();
        if (TestWantsElements(step.test)) {
          index().Dominated(ElementPoolFor(hq, step.test), ctx.node,
                            &scratch_);
        }
        if (TestWantsLeaves(step.test)) {
          index().Contained(index().Leaves(), ctx.node, &scratch_);
        }
        for (NodeId n : scratch_) out.push_back(NodeEntry::Of(n));
        break;
      }
      // Extent-dominated nodes (the GODDAG "ordered descendants").
      ++stats_.naive_axes;
      for (NodeId e : g_->AllElements()) {
        if (h_ok(e) && Dominates(*g_, ctx.node, e)) add_node(e);
      }
      Interval span = g_->char_range(ctx.node);
      for (NodeId leaf : g_->leaves()) {
        if (span.Contains(g_->char_range(leaf)) && leaf != ctx.node) {
          add_node(leaf);
        }
      }
      break;
    }

    case AxisKind::kParent: {
      if (ctx.is_document()) break;
      if (ctx.is_attribute()) {
        add(NodeEntry::Of(ctx.node));
        break;
      }
      if (g_->is_root(ctx.node)) {
        add(NodeEntry::Document());
        break;
      }
      if (g_->is_element(ctx.node)) {
        if (all_h || g_->hierarchy(ctx.node) == hq) {
          add_node(g_->parent(ctx.node));
        }
      } else {  // leaf: one parent per hierarchy
        if (all_h) {
          for (HierarchyId h = 0; h < g_->num_hierarchies(); ++h) {
            add_node(g_->leaf_parent(ctx.node, h));
          }
        } else {
          add_node(g_->leaf_parent(ctx.node, hq));
        }
      }
      break;
    }

    case AxisKind::kAncestor:
    case AxisKind::kAncestorOrSelf: {
      if (ctx.is_document()) {
        if (step.axis == AxisKind::kAncestorOrSelf) add(ctx);
        break;
      }
      // For an attribute, its owning element is the first ancestor.
      NodeId base = ctx.node;
      if (ctx.is_attribute()) {
        add(NodeEntry::Of(base));
      } else if (step.axis == AxisKind::kAncestorOrSelf) {
        add(ctx);
      }
      // Extent-dominating nodes + root + document.
      if (!g_->is_root(base)) {
        if (strategy_ == AxisStrategy::kIndexed) {
          ++stats_.indexed_axes;
          if (TestWantsElements(step.test)) {
            scratch_.clear();
            index().Dominating(ElementPoolFor(hq, step.test), base,
                               &scratch_);
            for (NodeId n : scratch_) out.push_back(NodeEntry::Of(n));
          }
        } else {
          ++stats_.naive_axes;
          for (NodeId e : g_->AllElements()) {
            if (h_ok(e) && Dominates(*g_, e, base)) add_node(e);
          }
        }
        add_node(g_->root());
      }
      add(NodeEntry::Document());
      break;
    }

    case AxisKind::kFollowingSibling:
    case AxisKind::kPrecedingSibling: {
      if (ctx.is_attribute() || ctx.is_document() ||
          g_->is_root(ctx.node)) {
        break;
      }
      const bool forward = step.axis == AxisKind::kFollowingSibling;
      auto scan = [&](const std::vector<NodeId>& siblings) {
        auto it = std::find(siblings.begin(), siblings.end(), ctx.node);
        if (it == siblings.end()) return;
        if (forward) {
          for (auto s = it + 1; s != siblings.end(); ++s) add_node(*s);
        } else {
          for (auto s = siblings.begin(); s != it; ++s) add_node(*s);
        }
      };
      if (g_->is_element(ctx.node)) {
        HierarchyId h = g_->hierarchy(ctx.node);
        if (!all_h && h != hq) break;
        NodeId p = g_->parent(ctx.node);
        scan(p == g_->root() ? g_->root_children(h) : g_->children(p));
      } else {  // leaf: siblings per hierarchy
        for (HierarchyId h = 0; h < g_->num_hierarchies(); ++h) {
          if (!all_h && h != hq) continue;
          NodeId p = g_->leaf_parent(ctx.node, h);
          scan(p == g_->root() ? g_->root_children(h) : g_->children(p));
        }
      }
      break;
    }

    case AxisKind::kFollowing:
    case AxisKind::kPreceding: {
      if (ctx.is_document()) break;
      const bool forward = step.axis == AxisKind::kFollowing;
      if (strategy_ == AxisStrategy::kIndexed) {
        ++stats_.indexed_axes;
        scratch_.clear();
        if (TestWantsElements(step.test)) {
          const auto& pool = ElementPoolFor(hq, step.test);
          if (forward) {
            index().FollowingOf(pool, ctx.node, &scratch_);
          } else {
            index().PrecedingOf(pool, ctx.node, &scratch_);
          }
        }
        if (TestWantsLeaves(step.test)) {
          if (forward) {
            index().FollowingOf(index().Leaves(), ctx.node, &scratch_);
          } else {
            index().PrecedingOf(index().Leaves(), ctx.node, &scratch_);
          }
        }
        for (NodeId n : scratch_) out.push_back(NodeEntry::Of(n));
        break;
      }
      Interval span = g_->char_range(ctx.node);
      ++stats_.naive_axes;
      for (NodeId e : g_->AllElements()) {
        if (!h_ok(e) || e == ctx.node) continue;
        Interval o = g_->char_range(e);
        if (forward ? o.begin >= span.end && !(o == span)
                    : o.end <= span.begin && !(o == span)) {
          add_node(e);
        }
      }
      for (NodeId leaf : g_->leaves()) {
        if (leaf == ctx.node) continue;
        Interval o = g_->char_range(leaf);
        // Equal-extent twins are excluded exactly as for elements (a
        // no-op in practice: leaves are never zero-width, and only
        // zero-width nodes can share an extent with the context here —
        // see the header's following/preceding contract).
        if (forward ? o.begin >= span.end && !(o == span)
                    : o.end <= span.begin && !(o == span)) {
          add_node(leaf);
        }
      }
      break;
    }

    case AxisKind::kOverlapping:
    case AxisKind::kOverlappingStart:
    case AxisKind::kOverlappingEnd: {
      if (ctx.is_attribute() || ctx.is_document()) break;
      Interval span = g_->char_range(ctx.node);
      auto keep_mode = [&](const Interval& o) {
        if (step.axis == AxisKind::kOverlappingStart) {
          return span.OverlapsRight(o);  // e starts inside ctx
        }
        if (step.axis == AxisKind::kOverlappingEnd) {
          return span.OverlapsLeft(o);  // e ends inside ctx
        }
        return true;
      };
      // Both strategies consider elements only: leaves tile the content
      // and may straddle element borders, but the paper's overlapping
      // axis asks about concurrent *markup*.
      if (strategy_ == AxisStrategy::kIndexed) {
        ++stats_.indexed_axes;
        if (TestWantsElements(step.test)) {
          scratch_.clear();
          index().OverlappingOf(ElementPoolFor(hq, step.test), span,
                                ctx.node, &scratch_);
          for (NodeId e : scratch_) {
            if (keep_mode(g_->char_range(e))) out.push_back(NodeEntry::Of(e));
          }
        }
        break;
      }
      ++stats_.naive_axes;
      for (NodeId e : g_->AllElements()) {
        if (e == ctx.node || !h_ok(e)) continue;
        Interval o = g_->char_range(e);
        if (span.Overlaps(o) && keep_mode(o)) add_node(e);
      }
      break;
    }
  }

  // Compiled positional pushdown on child steps: the window is just
  // the matching children, but reducing it to the one selected node
  // here keeps the predicate loop (and any further predicates) from
  // running over the rest of the sibling list.
  if (step.axis == AxisKind::kChild && UsePositional(step) &&
      out.size() > 1) {
    ++stats_.pushdown_axes;
    // Structural Before, not index().Before: a child window is a
    // handful of siblings, and building a whole SnapshotIndex just to
    // order them would cost more than it saves on engines that never
    // touch a pool-backed axis.
    const bool first =
        step.plan.positional == StepPlan::Positional::kFirst;
    NodeEntry chosen = out.front();
    for (size_t i = 1; i < out.size(); ++i) {
      if (first ? g_->Before(out[i].node, chosen.node)
                : g_->Before(chosen.node, out[i].node)) {
        chosen = out[i];
      }
    }
    out.assign(1, chosen);
  }

  NormalizeSet(&out);
  return out;
}

Result<NodeSet> Evaluator::EvalStep(const Step& step, NodeSet input) {
  NodeSet result;
  for (const NodeEntry& ctx : input) {
    CXML_ASSIGN_OR_RETURN(NodeSet candidates, AxisNodes(step, ctx));
    if (IsReverseAxis(step.axis)) {
      std::reverse(candidates.begin(), candidates.end());
    }
    // Apply predicates with proximity positions.
    for (const ExprPtr& pred : step.predicates) {
      NodeSet filtered;
      for (size_t i = 0; i < candidates.size(); ++i) {
        Context pctx;
        pctx.node = candidates[i];
        pctx.position = i + 1;
        pctx.size = candidates.size();
        CXML_ASSIGN_OR_RETURN(Value v, EvalExpr(*pred, pctx));
        bool keep = (v.type() == Value::Type::kNumber)
                        ? (v.ToNumber(*g_) ==
                           static_cast<double>(pctx.position))
                        : v.ToBoolean();
        if (keep) filtered.push_back(candidates[i]);
      }
      candidates = std::move(filtered);
    }
    result.insert(result.end(), candidates.begin(), candidates.end());
  }
  NormalizeSet(&result);
  return result;
}

Result<NodeSet> Evaluator::EvalPath(const LocationPath& path,
                                    const Context& ctx) {
  NodeSet current;
  if (path.absolute) {
    current.push_back(NodeEntry::Document());
  } else {
    current.push_back(ctx.node);
  }
  for (const Step& step : path.steps) {
    CXML_ASSIGN_OR_RETURN(current, EvalStep(step, std::move(current)));
    if (current.empty()) break;
  }
  return current;
}

Result<Value> Evaluator::EvalFilter(const Expr& expr, const Context& ctx) {
  CXML_ASSIGN_OR_RETURN(Value primary, EvalExpr(*expr.children[0], ctx));
  if (expr.predicates.empty() && expr.path.steps.empty()) return primary;
  if (!primary.is_node_set()) {
    return status::InvalidArgument(
        "XPath: predicates/steps can only follow a node-set expression");
  }
  NodeSet nodes = std::move(primary.nodes());
  NormalizeSet(&nodes);
  for (const ExprPtr& pred : expr.predicates) {
    NodeSet filtered;
    for (size_t i = 0; i < nodes.size(); ++i) {
      Context pctx;
      pctx.node = nodes[i];
      pctx.position = i + 1;
      pctx.size = nodes.size();
      CXML_ASSIGN_OR_RETURN(Value v, EvalExpr(*pred, pctx));
      bool keep =
          (v.type() == Value::Type::kNumber)
              ? (v.ToNumber(*g_) == static_cast<double>(pctx.position))
              : v.ToBoolean();
      if (keep) filtered.push_back(nodes[i]);
    }
    nodes = std::move(filtered);
  }
  for (const Step& step : expr.path.steps) {
    CXML_ASSIGN_OR_RETURN(nodes, EvalStep(step, std::move(nodes)));
  }
  return Value(std::move(nodes));
}

Result<Value> Evaluator::Compare(Expr::Kind op, const Value& lhs,
                                 const Value& rhs) {
  auto sv = [&](const NodeEntry& e) { return Value::StringValue(*g_, e); };
  const bool equality =
      op == Expr::Kind::kEquals || op == Expr::Kind::kNotEquals;
  auto num_cmp = [&](double a, double b) {
    switch (op) {
      case Expr::Kind::kEquals:
        return a == b;
      case Expr::Kind::kNotEquals:
        return a != b;
      case Expr::Kind::kLess:
        return a < b;
      case Expr::Kind::kLessEq:
        return a <= b;
      case Expr::Kind::kGreater:
        return a > b;
      case Expr::Kind::kGreaterEq:
        return a >= b;
      default:
        return false;
    }
  };
  auto str_cmp = [&](const std::string& a, const std::string& b) {
    return op == Expr::Kind::kEquals ? a == b : a != b;
  };
  auto other_is_boolean = [](const Value& v) {
    return v.type() == Value::Type::kBoolean;
  };

  if (lhs.is_node_set() && rhs.is_node_set()) {
    for (const NodeEntry& a : lhs.nodes()) {
      for (const NodeEntry& b : rhs.nodes()) {
        if (equality ? str_cmp(sv(a), sv(b))
                     : num_cmp(ParseXPathNumber(sv(a)),
                               ParseXPathNumber(sv(b)))) {
          return Value(true);
        }
      }
    }
    return Value(false);
  }
  if (lhs.is_node_set() || rhs.is_node_set()) {
    const Value& set = lhs.is_node_set() ? lhs : rhs;
    const Value& other = lhs.is_node_set() ? rhs : lhs;
    const bool set_on_left = lhs.is_node_set();
    // Per XPath: comparing a node-set with a boolean compares boolean().
    if (equality && other_is_boolean(other)) {
      return Value(op == Expr::Kind::kEquals
                       ? set.ToBoolean() == other.ToBoolean()
                       : set.ToBoolean() != other.ToBoolean());
    }
    for (const NodeEntry& e : set.nodes()) {
      bool match;
      if (equality) {
        if (other.type() == Value::Type::kNumber) {
          match = num_cmp(ParseXPathNumber(sv(e)), other.ToNumber(*g_));
        } else {
          match = str_cmp(sv(e), other.ToString(*g_));
        }
      } else {
        double a = ParseXPathNumber(sv(e));
        double b = other.ToNumber(*g_);
        match = set_on_left ? num_cmp(a, b) : num_cmp(b, a);
      }
      if (match) return Value(true);
    }
    return Value(false);
  }
  // Neither is a node-set.
  if (equality) {
    if (lhs.type() == Value::Type::kBoolean ||
        rhs.type() == Value::Type::kBoolean) {
      bool eq = lhs.ToBoolean() == rhs.ToBoolean();
      return Value(op == Expr::Kind::kEquals ? eq : !eq);
    }
    if (lhs.type() == Value::Type::kNumber ||
        rhs.type() == Value::Type::kNumber) {
      return Value(num_cmp(lhs.ToNumber(*g_), rhs.ToNumber(*g_)));
    }
    return Value(str_cmp(lhs.ToString(*g_), rhs.ToString(*g_)));
  }
  return Value(num_cmp(lhs.ToNumber(*g_), rhs.ToNumber(*g_)));
}

Result<Value> Evaluator::EvalExpr(const Expr& expr, const Context& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kOr: {
      CXML_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], ctx));
      if (lhs.ToBoolean()) return Value(true);
      CXML_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], ctx));
      return Value(rhs.ToBoolean());
    }
    case Expr::Kind::kAnd: {
      CXML_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], ctx));
      if (!lhs.ToBoolean()) return Value(false);
      CXML_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], ctx));
      return Value(rhs.ToBoolean());
    }
    case Expr::Kind::kEquals:
    case Expr::Kind::kNotEquals:
    case Expr::Kind::kLess:
    case Expr::Kind::kLessEq:
    case Expr::Kind::kGreater:
    case Expr::Kind::kGreaterEq: {
      CXML_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], ctx));
      CXML_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], ctx));
      return Compare(expr.kind, lhs, rhs);
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kSubtract:
    case Expr::Kind::kMultiply:
    case Expr::Kind::kDivide:
    case Expr::Kind::kModulo: {
      CXML_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], ctx));
      CXML_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], ctx));
      double a = lhs.ToNumber(*g_);
      double b = rhs.ToNumber(*g_);
      switch (expr.kind) {
        case Expr::Kind::kAdd:
          return Value(a + b);
        case Expr::Kind::kSubtract:
          return Value(a - b);
        case Expr::Kind::kMultiply:
          return Value(a * b);
        case Expr::Kind::kDivide:
          return Value(a / b);
        default:
          return Value(std::fmod(a, b));
      }
    }
    case Expr::Kind::kNegate: {
      CXML_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], ctx));
      return Value(-v.ToNumber(*g_));
    }
    case Expr::Kind::kUnion: {
      CXML_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], ctx));
      CXML_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], ctx));
      if (!lhs.is_node_set() || !rhs.is_node_set()) {
        return status::InvalidArgument(
            "XPath: '|' requires node-set operands");
      }
      NodeSet merged = std::move(lhs.nodes());
      merged.insert(merged.end(), rhs.nodes().begin(), rhs.nodes().end());
      NormalizeSet(&merged);
      return Value(std::move(merged));
    }
    case Expr::Kind::kPath: {
      CXML_ASSIGN_OR_RETURN(NodeSet nodes, EvalPath(expr.path, ctx));
      return Value(std::move(nodes));
    }
    case Expr::Kind::kFilter:
      return EvalFilter(expr, ctx);
    case Expr::Kind::kLiteral:
      return Value(expr.string_value);
    case Expr::Kind::kNumber:
      return Value(expr.number_value);
    case Expr::Kind::kFunction:
      return CallFunction(expr, ctx);
    case Expr::Kind::kVariable: {
      auto it = variables_.find(expr.string_value);
      if (it == variables_.end()) {
        return status::NotFound(
            StrCat("XPath: unbound variable $", expr.string_value));
      }
      return it->second;
    }
  }
  return status::Internal("XPath: unhandled expression kind");
}

}  // namespace cxml::xpath
