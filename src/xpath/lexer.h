#ifndef CXML_XPATH_LEXER_H_
#define CXML_XPATH_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cxml::xpath {

/// XPath token kinds.
enum class TokenKind {
  kName,         ///< NCName (axis names, element names, function names)
  kNumber,
  kLiteral,      ///< quoted string
  kVariable,     ///< $name (name stored without '$')
  kSlash,        ///< /
  kDoubleSlash,  ///< //
  kAxisSep,      ///< ::
  kAt,           ///< @
  kDot,          ///< .
  kDotDot,       ///< ..
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kPipe,         ///< |
  kStar,         ///< *
  kEq,
  kNotEq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kPlus,
  kMinus,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< names, literals
  double number = 0;  ///< kNumber
  size_t offset = 0;  ///< for error messages
};

/// Tokenises a whole XPath expression up front (expressions are short).
Result<std::vector<Token>> TokenizeXPath(std::string_view input);

}  // namespace cxml::xpath

#endif  // CXML_XPATH_LEXER_H_
