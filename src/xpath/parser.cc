#include "xpath/parser.h"

#include <map>

#include "common/strings.h"
#include "xpath/lexer.h"

namespace cxml::xpath {

namespace {

const std::map<std::string, AxisKind, std::less<>>& AxisNames() {
  static const auto* kMap = new std::map<std::string, AxisKind, std::less<>>{
      {"child", AxisKind::kChild},
      {"descendant", AxisKind::kDescendant},
      {"parent", AxisKind::kParent},
      {"ancestor", AxisKind::kAncestor},
      {"following-sibling", AxisKind::kFollowingSibling},
      {"preceding-sibling", AxisKind::kPrecedingSibling},
      {"following", AxisKind::kFollowing},
      {"preceding", AxisKind::kPreceding},
      {"attribute", AxisKind::kAttribute},
      {"self", AxisKind::kSelf},
      {"descendant-or-self", AxisKind::kDescendantOrSelf},
      {"ancestor-or-self", AxisKind::kAncestorOrSelf},
      {"overlapping", AxisKind::kOverlapping},
      {"overlapping-start", AxisKind::kOverlappingStart},
      {"overlapping-end", AxisKind::kOverlappingEnd},
  };
  return *kMap;
}

bool IsNodeTypeName(std::string_view name) {
  return name == "text" || name == "node" || name == "leaf";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    CXML_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing tokens after expression");
    }
    return expr;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Take() { return tokens_[pos_++]; }
  bool ConsumeIf(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeIfName(std::string_view name) {
    if (Peek().kind == TokenKind::kName && Peek().text == name) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(std::string_view message) const {
    return status::ParseError(StrFormat(
        "XPath: %s at offset %zu", std::string(message).c_str(),
        Peek().offset));
  }

  // ---- expression grammar (descending precedence) ----

  Result<ExprPtr> ParseOr() {
    CXML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeIfName("or")) {
      CXML_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(Expr::Kind::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    CXML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseEquality());
    while (ConsumeIfName("and")) {
      CXML_ASSIGN_OR_RETURN(ExprPtr rhs, ParseEquality());
      lhs = Expr::Binary(Expr::Kind::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseEquality() {
    CXML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRelational());
    while (true) {
      Expr::Kind kind;
      if (ConsumeIf(TokenKind::kEq)) {
        kind = Expr::Kind::kEquals;
      } else if (ConsumeIf(TokenKind::kNotEq)) {
        kind = Expr::Kind::kNotEquals;
      } else {
        return lhs;
      }
      CXML_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRelational());
      lhs = Expr::Binary(kind, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseRelational() {
    CXML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      Expr::Kind kind;
      if (ConsumeIf(TokenKind::kLess)) {
        kind = Expr::Kind::kLess;
      } else if (ConsumeIf(TokenKind::kLessEq)) {
        kind = Expr::Kind::kLessEq;
      } else if (ConsumeIf(TokenKind::kGreater)) {
        kind = Expr::Kind::kGreater;
      } else if (ConsumeIf(TokenKind::kGreaterEq)) {
        kind = Expr::Kind::kGreaterEq;
      } else {
        return lhs;
      }
      CXML_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = Expr::Binary(kind, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseAdditive() {
    CXML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      Expr::Kind kind;
      if (ConsumeIf(TokenKind::kPlus)) {
        kind = Expr::Kind::kAdd;
      } else if (ConsumeIf(TokenKind::kMinus)) {
        kind = Expr::Kind::kSubtract;
      } else {
        return lhs;
      }
      CXML_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(kind, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    CXML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      Expr::Kind kind;
      if (ConsumeIf(TokenKind::kStar)) {
        kind = Expr::Kind::kMultiply;
      } else if (ConsumeIfName("div")) {
        kind = Expr::Kind::kDivide;
      } else if (ConsumeIfName("mod")) {
        kind = Expr::Kind::kModulo;
      } else {
        return lhs;
      }
      CXML_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(kind, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeIf(TokenKind::kMinus)) {
      CXML_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      auto e = std::make_unique<Expr>(Expr::Kind::kNegate);
      e->children.push_back(std::move(child));
      return e;
    }
    return ParseUnion();
  }

  Result<ExprPtr> ParseUnion() {
    CXML_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePathExpr());
    while (ConsumeIf(TokenKind::kPipe)) {
      CXML_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePathExpr());
      lhs = Expr::Binary(Expr::Kind::kUnion, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  /// True when the upcoming tokens start a location path (rather than a
  /// primary expression).
  bool StartsLocationPath() const {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kSlash:
      case TokenKind::kDoubleSlash:
      case TokenKind::kDot:
      case TokenKind::kDotDot:
      case TokenKind::kAt:
      case TokenKind::kStar:
        return true;
      case TokenKind::kName: {
        const Token& next = Peek(1);
        if (next.kind == TokenKind::kLParen) {
          // name( ... : function call unless a node-type test or an
          // axis qualifier `axis(hierarchy)::`.
          if (IsNodeTypeName(t.text)) return true;
          if (AxisNames().count(t.text) != 0 &&
              Peek(2).kind == TokenKind::kName &&
              Peek(3).kind == TokenKind::kRParen &&
              Peek(4).kind == TokenKind::kAxisSep) {
            return true;
          }
          return false;
        }
        return true;  // name test or axis::
      }
      default:
        return false;
    }
  }

  Result<ExprPtr> ParsePathExpr() {
    if (StartsLocationPath()) {
      auto e = std::make_unique<Expr>(Expr::Kind::kPath);
      CXML_ASSIGN_OR_RETURN(e->path, ParseLocationPath());
      return e;
    }
    // FilterExpr: primary predicates* ( ('/' | '//') relative path )?
    CXML_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimary());
    if (Peek().kind != TokenKind::kLBracket &&
        Peek().kind != TokenKind::kSlash &&
        Peek().kind != TokenKind::kDoubleSlash) {
      return primary;  // plain primary — no filter wrapper needed
    }
    auto filter = std::make_unique<Expr>(Expr::Kind::kFilter);
    filter->children.push_back(std::move(primary));
    while (Peek().kind == TokenKind::kLBracket) {
      CXML_ASSIGN_OR_RETURN(ExprPtr pred, ParsePredicate());
      filter->predicates.push_back(std::move(pred));
    }
    if (Peek().kind == TokenKind::kSlash ||
        Peek().kind == TokenKind::kDoubleSlash) {
      bool double_slash = Peek().kind == TokenKind::kDoubleSlash;
      Take();
      if (double_slash) {
        Step dos;
        dos.axis = AxisKind::kDescendantOrSelf;
        dos.test.kind = NodeTest::Kind::kNode;
        filter->path.steps.push_back(std::move(dos));
      }
      CXML_ASSIGN_OR_RETURN(LocationPath rel, ParseRelativePath());
      for (auto& step : rel.steps) {
        filter->path.steps.push_back(std::move(step));
      }
    }
    // Plain primaries stay as filters with no predicates/path — harmless.
    return filter;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable: {
        auto e = std::make_unique<Expr>(Expr::Kind::kVariable);
        e->string_value = Take().text;
        return e;
      }
      case TokenKind::kLiteral: {
        auto e = std::make_unique<Expr>(Expr::Kind::kLiteral);
        e->string_value = Take().text;
        return e;
      }
      case TokenKind::kNumber: {
        auto e = std::make_unique<Expr>(Expr::Kind::kNumber);
        e->number_value = Take().number;
        return e;
      }
      case TokenKind::kLParen: {
        Take();
        CXML_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        if (!ConsumeIf(TokenKind::kRParen)) return Error("expected ')'");
        return inner;
      }
      case TokenKind::kName: {
        if (Peek(1).kind != TokenKind::kLParen) {
          return Error(StrCat("unexpected name '", t.text, "'"));
        }
        auto e = std::make_unique<Expr>(Expr::Kind::kFunction);
        e->string_value = Take().text;
        Take();  // '('
        if (!ConsumeIf(TokenKind::kRParen)) {
          while (true) {
            CXML_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
            e->children.push_back(std::move(arg));
            if (ConsumeIf(TokenKind::kComma)) continue;
            if (ConsumeIf(TokenKind::kRParen)) break;
            return Error("expected ',' or ')' in function arguments");
          }
        }
        return e;
      }
      default:
        return Error("expected a primary expression");
    }
  }

  Result<ExprPtr> ParsePredicate() {
    Take();  // '['
    CXML_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    if (!ConsumeIf(TokenKind::kRBracket)) return Error("expected ']'");
    return expr;
  }

  Result<LocationPath> ParseLocationPath() {
    LocationPath path;
    if (ConsumeIf(TokenKind::kSlash)) {
      path.absolute = true;
      if (!StartsStep()) return path;  // bare "/"
    } else if (ConsumeIf(TokenKind::kDoubleSlash)) {
      path.absolute = true;
      Step dos;
      dos.axis = AxisKind::kDescendantOrSelf;
      dos.test.kind = NodeTest::Kind::kNode;
      path.steps.push_back(std::move(dos));
    }
    CXML_ASSIGN_OR_RETURN(LocationPath rel, ParseRelativePath());
    for (auto& step : rel.steps) path.steps.push_back(std::move(step));
    return path;
  }

  bool StartsStep() const {
    switch (Peek().kind) {
      case TokenKind::kDot:
      case TokenKind::kDotDot:
      case TokenKind::kAt:
      case TokenKind::kStar:
      case TokenKind::kName:
        return true;
      default:
        return false;
    }
  }

  Result<LocationPath> ParseRelativePath() {
    LocationPath path;
    CXML_ASSIGN_OR_RETURN(Step first, ParseStep());
    path.steps.push_back(std::move(first));
    while (true) {
      if (ConsumeIf(TokenKind::kSlash)) {
        CXML_ASSIGN_OR_RETURN(Step step, ParseStep());
        path.steps.push_back(std::move(step));
      } else if (ConsumeIf(TokenKind::kDoubleSlash)) {
        Step dos;
        dos.axis = AxisKind::kDescendantOrSelf;
        dos.test.kind = NodeTest::Kind::kNode;
        path.steps.push_back(std::move(dos));
        CXML_ASSIGN_OR_RETURN(Step step, ParseStep());
        path.steps.push_back(std::move(step));
      } else {
        return path;
      }
    }
  }

  Result<Step> ParseStep() {
    Step step;
    if (ConsumeIf(TokenKind::kDot)) {
      step.axis = AxisKind::kSelf;
      step.test.kind = NodeTest::Kind::kNode;
      return ParseStepPredicates(std::move(step));
    }
    if (ConsumeIf(TokenKind::kDotDot)) {
      step.axis = AxisKind::kParent;
      step.test.kind = NodeTest::Kind::kNode;
      return ParseStepPredicates(std::move(step));
    }
    if (ConsumeIf(TokenKind::kAt)) {
      step.axis = AxisKind::kAttribute;
      CXML_ASSIGN_OR_RETURN(step.test, ParseNodeTest());
      return ParseStepPredicates(std::move(step));
    }
    // Optional explicit axis.
    if (Peek().kind == TokenKind::kName) {
      auto axis_it = AxisNames().find(Peek().text);
      if (axis_it != AxisNames().end()) {
        // axis:: | axis(hierarchy)::
        if (Peek(1).kind == TokenKind::kAxisSep) {
          Take();
          Take();
          step.axis = axis_it->second;
          CXML_ASSIGN_OR_RETURN(step.test, ParseNodeTest());
          return ParseStepPredicates(std::move(step));
        }
        if (Peek(1).kind == TokenKind::kLParen &&
            Peek(2).kind == TokenKind::kName &&
            Peek(3).kind == TokenKind::kRParen &&
            Peek(4).kind == TokenKind::kAxisSep) {
          Take();  // axis
          Take();  // (
          step.hierarchy = Take().text;
          Take();  // )
          Take();  // ::
          step.axis = axis_it->second;
          CXML_ASSIGN_OR_RETURN(step.test, ParseNodeTest());
          return ParseStepPredicates(std::move(step));
        }
      }
    }
    // Abbreviated step: child axis.
    step.axis = AxisKind::kChild;
    CXML_ASSIGN_OR_RETURN(step.test, ParseNodeTest());
    return ParseStepPredicates(std::move(step));
  }

  Result<NodeTest> ParseNodeTest() {
    NodeTest test;
    if (ConsumeIf(TokenKind::kStar)) {
      test.kind = NodeTest::Kind::kAnyName;
      return test;
    }
    if (Peek().kind != TokenKind::kName) {
      return Error("expected a node test");
    }
    std::string name = Take().text;
    if (Peek().kind == TokenKind::kLParen && IsNodeTypeName(name)) {
      Take();
      if (!ConsumeIf(TokenKind::kRParen)) {
        return Error("expected ')' after node type test");
      }
      test.kind = (name == "node") ? NodeTest::Kind::kNode
                                   : NodeTest::Kind::kText;
      return test;
    }
    test.kind = NodeTest::Kind::kName;
    test.name = std::move(name);
    return test;
  }

  Result<Step> ParseStepPredicates(Step step) {
    while (Peek().kind == TokenKind::kLBracket) {
      CXML_ASSIGN_OR_RETURN(ExprPtr pred, ParsePredicate());
      step.predicates.push_back(std::move(pred));
    }
    return step;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseXPath(std::string_view expression) {
  CXML_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                        TokenizeXPath(expression));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace cxml::xpath
