#ifndef CXML_XPATH_EVALUATOR_H_
#define CXML_XPATH_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "goddag/goddag.h"
#include "goddag/snapshot_index.h"
#include "xpath/ast.h"
#include "xpath/value.h"

namespace cxml::xpath {

/// How the evaluator answers the global axes (descendant, ancestor,
/// following, preceding and the overlapping family).
enum class AxisStrategy {
  /// Binary-searched (hierarchy, tag) pools on a goddag::SnapshotIndex:
  /// O(log n + scanned window) per context node — the window is the
  /// matches for following/preceding and tag-restricted descendant
  /// steps, and can widen toward O(pool) for ancestor/overlapping
  /// under document-spanning elements (see SnapshotIndex). The
  /// default.
  kIndexed,
  /// The paper-literal full scans over AllElements()/leaves() with
  /// per-pair extent checks: O(n) per context node. Kept as the
  /// equivalence oracle — both strategies must return identical node
  /// sets (pinned by snapshot_index_test).
  kNaiveScan,
};

/// Running tallies of how the evaluator actually answered axis steps —
/// which strategy fired and how many pool nodes were pulled into
/// windows. Plain counters (the evaluator is single-threaded); the
/// service layer reads them around an evaluation and feeds the deltas
/// into its metrics registry and trace notes, which is the raw
/// selectivity data the planned cost-based planner consumes.
struct AxisStats {
  /// Global-axis steps answered from SnapshotIndex pools.
  uint64_t indexed_axes = 0;
  /// Global-axis steps answered by full AllElements()/leaves() scans.
  uint64_t naive_axes = 0;
  /// Steps short-circuited by the compiled [1]/[last()] pushdown.
  uint64_t pushdown_axes = 0;
  /// Total size of the (hierarchy, tag) pools touched via
  /// ElementPoolFor — the window the indexed strategies search in.
  uint64_t pool_nodes = 0;

  /// "indexed=N naive=N pushdown=N pool_nodes=N"
  std::string Summary() const;
};

/// Extended XPath evaluator over a GODDAG.
///
/// Semantics follow XPath 1.0 with the document-order, axis and
/// string-value definitions lifted to the GODDAG:
///  * a node may have one parent per hierarchy (leaves do);
///  * `following`/`preceding` are extent-based (strictly after/before in
///    content). Equal-extent nodes — only possible between zero-width
///    milestones at the same position — are neither following nor
///    preceding each other, for elements and leaves alike;
///  * the `overlapping` axes implement the paper's concurrent-markup
///    queries, with optional hierarchy qualifiers on every axis.
///
/// The evaluator is deliberately stateless across calls except for a
/// lazily built (or externally shared, see SetSnapshotIndex) snapshot
/// index — invalidated by Reset() — and variable bindings.
class Evaluator {
 public:
  /// `g` must outlive the evaluator.
  explicit Evaluator(const goddag::Goddag& g) : g_(&g) {}

  /// Evaluates against a context node (default: the virtual document
  /// node, so absolute and relative paths both work naturally).
  Result<Value> Evaluate(const Expr& expr,
                         NodeEntry context = NodeEntry::Document());

  /// Binds $name. Overwrites existing bindings.
  void SetVariable(const std::string& name, Value value);

  /// Selects indexed vs naive-scan axes (see AxisStrategy).
  void SetAxisStrategy(AxisStrategy strategy) { strategy_ = strategy; }
  AxisStrategy axis_strategy() const { return strategy_; }

  /// Enables/disables the compiled positional pushdown (StepPlan in
  /// ast.h): a descendant/child step whose leading predicate is [1] or
  /// [last()] selects its single node straight from the SnapshotIndex
  /// pool instead of materialising the full axis window. On by
  /// default; only takes effect under AxisStrategy::kIndexed on steps
  /// annotated by xpath::Compile, so the naive scans stay the oracle.
  void SetPositionalPushdown(bool enabled) {
    positional_pushdown_ = enabled;
  }
  bool positional_pushdown() const { return positional_pushdown_; }

  /// Adopts a prebuilt index over the same GODDAG — typically the one
  /// memoized on a service::DocumentSnapshot, so every engine pinned to
  /// a published version shares one build. Without this, the evaluator
  /// lazily builds a private index on first indexed-axis use.
  void SetSnapshotIndex(std::shared_ptr<const goddag::SnapshotIndex> index) {
    index_ = std::move(index);
  }

  /// Drops cached/adopted indexes after the GODDAG was mutated.
  void Reset() { index_.reset(); }

  /// Axis-strategy tallies accumulated since the last reset.
  const AxisStats& axis_stats() const { return stats_; }
  void ResetAxisStats() { stats_ = AxisStats(); }

 private:
  struct Context {
    NodeEntry node;
    size_t position = 1;  // 1-based
    size_t size = 1;
  };

  Result<Value> EvalExpr(const Expr& expr, const Context& ctx);
  Result<Value> EvalFilter(const Expr& expr, const Context& ctx);
  Result<NodeSet> EvalPath(const LocationPath& path, const Context& ctx);
  Result<NodeSet> EvalStep(const Step& step, NodeSet input);
  Result<NodeSet> AxisNodes(const Step& step, const NodeEntry& ctx);
  Result<Value> CallFunction(const Expr& call, const Context& ctx);
  Result<Value> Compare(Expr::Kind op, const Value& lhs, const Value& rhs);

  /// Resolves a step's hierarchy qualifier to an id; nullopt when the
  /// step has none. Errors on unknown names.
  Result<goddag::HierarchyId> ResolveHierarchy(const std::string& name)
      const;

  bool MatchesTest(const NodeTest& test, const NodeEntry& entry,
                   bool attribute_axis) const;

  /// The snapshot index (lazily built when none was adopted).
  const goddag::SnapshotIndex& index();
  /// The element pool matching a step's hierarchy qualifier and name
  /// test — the "prune before the axis scan" selection.
  const goddag::SnapshotIndex::Pool& ElementPoolFor(goddag::HierarchyId hq,
                                                    const NodeTest& test);
  /// Document-order sort + dedup: O(1) rank compares when an index is
  /// live, Value::Normalize otherwise (identical order either way).
  void NormalizeSet(NodeSet* set);

  /// True when `step` should resolve through the positional pushdown
  /// (plan present, pushdown enabled, indexed strategy).
  bool UsePositional(const Step& step) const {
    return positional_pushdown_ && strategy_ == AxisStrategy::kIndexed &&
           step.plan.positional != StepPlan::Positional::kNone;
  }

  const goddag::Goddag* g_;
  std::map<std::string, Value> variables_;
  AxisStrategy strategy_ = AxisStrategy::kIndexed;
  bool positional_pushdown_ = true;
  std::shared_ptr<const goddag::SnapshotIndex> index_;
  AxisStats stats_;
  /// Reused axis-result buffer (AxisNodes never recurses while filling).
  std::vector<goddag::NodeId> scratch_;
};

}  // namespace cxml::xpath

#endif  // CXML_XPATH_EVALUATOR_H_
