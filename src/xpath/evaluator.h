#ifndef CXML_XPATH_EVALUATOR_H_
#define CXML_XPATH_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>

#include "goddag/algebra.h"
#include "goddag/goddag.h"
#include "xpath/ast.h"
#include "xpath/value.h"

namespace cxml::xpath {

/// Extended XPath evaluator over a GODDAG.
///
/// Semantics follow XPath 1.0 with the document-order, axis and
/// string-value definitions lifted to the GODDAG:
///  * a node may have one parent per hierarchy (leaves do);
///  * `following`/`preceding` are extent-based (strictly after/before in
///    content);
///  * the `overlapping` axes implement the paper's concurrent-markup
///    queries, with optional hierarchy qualifiers on every axis.
///
/// The evaluator is deliberately stateless across calls except for a
/// lazily built extent index (invalidated by Reset()) and variable
/// bindings.
class Evaluator {
 public:
  /// `g` must outlive the evaluator.
  explicit Evaluator(const goddag::Goddag& g) : g_(&g) {}

  /// Evaluates against a context node (default: the virtual document
  /// node, so absolute and relative paths both work naturally).
  Result<Value> Evaluate(const Expr& expr,
                         NodeEntry context = NodeEntry::Document());

  /// Binds $name. Overwrites existing bindings.
  void SetVariable(const std::string& name, Value value);

  /// Drops cached indexes after the GODDAG was mutated.
  void Reset() { extent_index_.reset(); }

 private:
  struct Context {
    NodeEntry node;
    size_t position = 1;  // 1-based
    size_t size = 1;
  };

  Result<Value> EvalExpr(const Expr& expr, const Context& ctx);
  Result<Value> EvalFilter(const Expr& expr, const Context& ctx);
  Result<NodeSet> EvalPath(const LocationPath& path, const Context& ctx);
  Result<NodeSet> EvalStep(const Step& step, NodeSet input);
  Result<NodeSet> AxisNodes(const Step& step, const NodeEntry& ctx);
  Result<Value> CallFunction(const Expr& call, const Context& ctx);
  Result<Value> Compare(Expr::Kind op, const Value& lhs, const Value& rhs);

  /// Resolves a step's hierarchy qualifier to an id; nullopt when the
  /// step has none. Errors on unknown names.
  Result<goddag::HierarchyId> ResolveHierarchy(const std::string& name)
      const;

  bool MatchesTest(const NodeTest& test, const NodeEntry& entry,
                   bool attribute_axis) const;
  const goddag::ExtentIndex& extent_index();

  const goddag::Goddag* g_;
  std::map<std::string, Value> variables_;
  std::unique_ptr<goddag::ExtentIndex> extent_index_;
};

}  // namespace cxml::xpath

#endif  // CXML_XPATH_EVALUATOR_H_
