// The Extended XPath function library (Evaluator::CallFunction): the
// XPath 1.0 core functions plus the concurrent-markup extensions
// hierarchy(), overlap-degree(), range-start(), range-end() and
// leaf-count().

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "common/unicode.h"
#include "xpath/evaluator.h"

namespace cxml::xpath {

using goddag::kInvalidHierarchy;

namespace {

/// Substring by code points with XPath's rounding rules.
std::string XPathSubstring(const std::string& s, double start_d,
                           double length_d, bool has_length) {
  // XPath positions are 1-based over code points; round() halves up.
  if (std::isnan(start_d)) return "";
  double start = std::floor(start_d + 0.5);
  double end;
  if (has_length) {
    if (std::isnan(length_d)) return "";
    end = start + std::floor(length_d + 0.5);
  } else {
    end = std::numeric_limits<double>::infinity();
  }
  std::string out;
  size_t pos = 0;
  double index = 1;
  while (pos < s.size()) {
    DecodedChar d = DecodeUtf8(s, pos);
    size_t len = d.valid() ? d.length : 1;
    if (index >= start && index < end) out.append(s, pos, len);
    pos += len;
    index += 1;
  }
  return out;
}

}  // namespace

Result<Value> Evaluator::CallFunction(const Expr& call, const Context& ctx) {
  const std::string& name = call.string_value;
  // Evaluate arguments eagerly (all core functions are strict).
  std::vector<Value> args;
  args.reserve(call.children.size());
  for (const ExprPtr& arg : call.children) {
    CXML_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, ctx));
    args.push_back(std::move(v));
  }
  auto arity_error = [&](const char* expected) {
    return status::InvalidArgument(StrFormat(
        "XPath: %s() expects %s argument(s), got %zu", name.c_str(),
        expected, args.size()));
  };
  auto arg_string = [&](size_t i) { return args[i].ToString(*g_); };
  auto arg_number = [&](size_t i) { return args[i].ToNumber(*g_); };
  /// Context node as a singleton set, or args[0] when provided.
  auto target_set = [&]() -> Result<NodeSet> {
    if (args.empty()) return NodeSet{ctx.node};
    if (!args[0].is_node_set()) {
      return status::InvalidArgument(StrCat(
          "XPath: ", name, "() expects a node-set argument"));
    }
    return args[0].nodes();
  };

  // ------------------------------------------------ node-set functions
  if (name == "last") {
    if (!args.empty()) return arity_error("0");
    return Value(static_cast<double>(ctx.size));
  }
  if (name == "position") {
    if (!args.empty()) return arity_error("0");
    return Value(static_cast<double>(ctx.position));
  }
  if (name == "count") {
    if (args.size() != 1 || !args[0].is_node_set()) {
      return arity_error("1 node-set");
    }
    return Value(static_cast<double>(args[0].nodes().size()));
  }
  if (name == "name" || name == "local-name") {
    CXML_ASSIGN_OR_RETURN(NodeSet set, target_set());
    if (set.empty()) return Value(std::string());
    NodeEntry first = set.front();
    for (const NodeEntry& e : set) {
      if (Value::DocBefore(*g_, e, first)) first = e;
    }
    if (first.is_document()) return Value(std::string());
    if (first.is_attribute()) {
      const auto& attrs = g_->attributes(first.node);
      if (first.attr < static_cast<int32_t>(attrs.size())) {
        return Value(attrs[static_cast<size_t>(first.attr)].name);
      }
      return Value(std::string());
    }
    if (g_->is_leaf(first.node)) return Value(std::string());
    return Value(g_->tag(first.node));
  }

  // -------------------------------------------------- string functions
  if (name == "string") {
    if (args.size() > 1) return arity_error("0 or 1");
    if (args.empty()) {
      return Value(Value::StringValue(*g_, ctx.node));
    }
    return Value(arg_string(0));
  }
  if (name == "concat") {
    if (args.size() < 2) return arity_error(">= 2");
    std::string out;
    for (size_t i = 0; i < args.size(); ++i) out += arg_string(i);
    return Value(std::move(out));
  }
  if (name == "starts-with") {
    if (args.size() != 2) return arity_error("2");
    return Value(StartsWith(arg_string(0), arg_string(1)));
  }
  if (name == "contains") {
    if (args.size() != 2) return arity_error("2");
    return Value(arg_string(0).find(arg_string(1)) != std::string::npos);
  }
  if (name == "substring-before") {
    if (args.size() != 2) return arity_error("2");
    std::string s = arg_string(0);
    size_t at = s.find(arg_string(1));
    return Value(at == std::string::npos ? std::string()
                                         : s.substr(0, at));
  }
  if (name == "substring-after") {
    if (args.size() != 2) return arity_error("2");
    std::string s = arg_string(0);
    std::string needle = arg_string(1);
    size_t at = s.find(needle);
    return Value(at == std::string::npos ? std::string()
                                         : s.substr(at + needle.size()));
  }
  if (name == "substring") {
    if (args.size() != 2 && args.size() != 3) return arity_error("2 or 3");
    return Value(XPathSubstring(arg_string(0), arg_number(1),
                                args.size() == 3 ? arg_number(2) : 0,
                                args.size() == 3));
  }
  if (name == "string-length") {
    if (args.size() > 1) return arity_error("0 or 1");
    std::string s = args.empty() ? Value::StringValue(*g_, ctx.node)
                                 : arg_string(0);
    return Value(static_cast<double>(Utf8Length(s)));
  }
  if (name == "normalize-space") {
    if (args.size() > 1) return arity_error("0 or 1");
    std::string s = args.empty() ? Value::StringValue(*g_, ctx.node)
                                 : arg_string(0);
    return Value(NormalizeSpace(s));
  }
  if (name == "translate") {
    if (args.size() != 3) return arity_error("3");
    std::string s = arg_string(0), from = arg_string(1), to = arg_string(2);
    std::string out;
    for (char c : s) {
      size_t at = from.find(c);
      if (at == std::string::npos) {
        out.push_back(c);
      } else if (at < to.size()) {
        out.push_back(to[at]);
      }  // else: dropped
    }
    return Value(std::move(out));
  }

  // ------------------------------------------------- boolean functions
  if (name == "boolean") {
    if (args.size() != 1) return arity_error("1");
    return Value(args[0].ToBoolean());
  }
  if (name == "not") {
    if (args.size() != 1) return arity_error("1");
    return Value(!args[0].ToBoolean());
  }
  if (name == "true") {
    if (!args.empty()) return arity_error("0");
    return Value(true);
  }
  if (name == "false") {
    if (!args.empty()) return arity_error("0");
    return Value(false);
  }

  // -------------------------------------------------- number functions
  if (name == "number") {
    if (args.size() > 1) return arity_error("0 or 1");
    if (args.empty()) {
      return Value(ParseXPathNumber(Value::StringValue(*g_, ctx.node)));
    }
    return Value(arg_number(0));
  }
  if (name == "sum") {
    if (args.size() != 1 || !args[0].is_node_set()) {
      return arity_error("1 node-set");
    }
    double total = 0;
    for (const NodeEntry& e : args[0].nodes()) {
      total += ParseXPathNumber(Value::StringValue(*g_, e));
    }
    return Value(total);
  }
  if (name == "floor") {
    if (args.size() != 1) return arity_error("1");
    return Value(std::floor(arg_number(0)));
  }
  if (name == "ceiling") {
    if (args.size() != 1) return arity_error("1");
    return Value(std::ceil(arg_number(0)));
  }
  if (name == "round") {
    if (args.size() != 1) return arity_error("1");
    double v = arg_number(0);
    if (std::isnan(v) || std::isinf(v)) return Value(v);
    return Value(std::floor(v + 0.5));
  }

  // ------------------------------- concurrent-markup extensions (paper)
  if (name == "hierarchy") {
    // Name of the hierarchy owning the (first) node; "" for root, leaves
    // and the document.
    CXML_ASSIGN_OR_RETURN(NodeSet set, target_set());
    if (set.empty()) return Value(std::string());
    NodeEntry first = set.front();
    if (first.is_document() || !g_->is_element(first.node)) {
      return Value(std::string());
    }
    goddag::HierarchyId h = g_->hierarchy(first.node);
    if (h == kInvalidHierarchy) return Value(std::string());
    if (g_->cmh() != nullptr) return Value(g_->cmh()->hierarchy(h).name);
    return Value(StrFormat("%u", h));
  }
  if (name == "overlap-degree") {
    // Number of elements properly overlapping the (first) node.
    CXML_ASSIGN_OR_RETURN(NodeSet set, target_set());
    if (set.empty()) return Value(0.0);
    NodeEntry first = set.front();
    if (first.is_document() || first.is_attribute()) return Value(0.0);
    Interval span = g_->char_range(first.node);
    // Respect the axis strategy so the naive path stays a genuine
    // equivalence oracle for the indexed one (and never builds an
    // index as a side effect).
    if (axis_strategy() == AxisStrategy::kNaiveScan) {
      size_t degree = 0;
      for (goddag::NodeId e : g_->AllElements()) {
        if (e != first.node && span.Overlaps(g_->char_range(e))) ++degree;
      }
      return Value(static_cast<double>(degree));
    }
    std::vector<goddag::NodeId> over;
    index().OverlappingOf(index().Elements(kInvalidHierarchy), span,
                          first.node, &over);
    return Value(static_cast<double>(over.size()));
  }
  if (name == "range-start" || name == "range-end") {
    CXML_ASSIGN_OR_RETURN(NodeSet set, target_set());
    if (set.empty()) return Value(std::nan(""));
    NodeEntry first = set.front();
    Interval span = first.is_document()
                        ? Interval(0, g_->content().size())
                        : g_->char_range(first.node);
    return Value(static_cast<double>(name == "range-start" ? span.begin
                                                           : span.end));
  }
  if (name == "leaf-count") {
    CXML_ASSIGN_OR_RETURN(NodeSet set, target_set());
    if (set.empty()) return Value(0.0);
    NodeEntry first = set.front();
    if (first.is_document()) {
      return Value(static_cast<double>(g_->num_leaves()));
    }
    return Value(static_cast<double>(g_->leaf_range(first.node).length()));
  }

  return status::NotFound(StrCat("XPath: unknown function '", name, "'"));
}

}  // namespace cxml::xpath
