#include "sacx/sacx.h"

#include <optional>

#include "common/strings.h"
#include "xml/lexer.h"

namespace cxml::sacx {

namespace {

/// A positioned markup event from one hierarchy's token stream.
struct MarkupEvent {
  bool is_start = false;
  size_t pos = 0;
  xml::Event event;  // name + attrs (+ self_closing for starts)
};

/// Pull source over one hierarchy's document: yields markup events with
/// content offsets, accumulates the decoded content, and enforces local
/// well-formedness (balance, single root, vocabulary membership).
class EventSource {
 public:
  EventSource(const cmh::ConcurrentHierarchies& cmh, HierarchyId h,
              std::string_view source)
      : cmh_(&cmh), h_(h), lexer_(source) {}

  /// Advances to the next markup event; nullopt at end of document.
  Result<std::optional<MarkupEvent>> Next() {
    if (pending_end_.has_value()) {
      MarkupEvent ev = std::move(*pending_end_);
      pending_end_.reset();
      --depth_;
      return std::optional<MarkupEvent>(std::move(ev));
    }
    while (true) {
      CXML_ASSIGN_OR_RETURN(xml::Event ev, lexer_.Next());
      switch (ev.kind) {
        case xml::EventKind::kEndOfDocument: {
          if (depth_ != 0) {
            return Error("unexpected end of document: unclosed element");
          }
          if (!seen_root_) return Error("document has no root element");
          return std::optional<MarkupEvent>();
        }
        case xml::EventKind::kText:
        case xml::EventKind::kCData: {
          if (depth_ == 0) {
            if (!IsAllWhitespace(ev.text)) {
              return Error("character data outside the root element");
            }
            break;  // prolog/epilog whitespace
          }
          content_ += ev.text;
          break;
        }
        case xml::EventKind::kStartElement: {
          if (depth_ == 0) {
            if (seen_root_) return Error("second root element");
            seen_root_ = true;
            if (ev.name != cmh_->root_tag()) {
              return Error(StrCat("root element '", ev.name,
                                  "', expected shared root '",
                                  cmh_->root_tag(), "'"));
            }
          } else if (!cmh_->hierarchy(h_).Covers(ev.name)) {
            return Error(StrCat("element '", ev.name,
                                "' is not declared in hierarchy '",
                                cmh_->hierarchy(h_).name, "'"));
          }
          stack_.push_back(ev.name);
          ++depth_;
          MarkupEvent out;
          out.is_start = true;
          out.pos = content_.size();
          out.event = ev;
          if (ev.self_closing) {
            MarkupEvent end;
            end.is_start = false;
            end.pos = content_.size();
            end.event.kind = xml::EventKind::kEndElement;
            end.event.name = ev.name;
            pending_end_ = std::move(end);
            stack_.pop_back();
            // depth_ decremented when the pending end is delivered.
          }
          // Suppress the shared root: it is reported via StartDocument.
          if (depth_ == 1) {
            if (ev.self_closing) {
              pending_end_.reset();
              --depth_;
            }
            break;
          }
          return std::optional<MarkupEvent>(std::move(out));
        }
        case xml::EventKind::kEndElement: {
          if (stack_.empty()) {
            return Error(StrCat("stray end tag '</", ev.name, ">'"));
          }
          if (stack_.back() != ev.name) {
            return Error(StrCat("mismatched end tag '</", ev.name,
                                ">', expected '</", stack_.back(), ">'"));
          }
          stack_.pop_back();
          --depth_;
          if (depth_ == 0) break;  // suppress the shared root's end
          MarkupEvent out;
          out.is_start = false;
          out.pos = content_.size();
          out.event = ev;
          return std::optional<MarkupEvent>(std::move(out));
        }
        case xml::EventKind::kComment:
        case xml::EventKind::kProcessingInstruction:
        case xml::EventKind::kXmlDecl:
        case xml::EventKind::kDoctype:
          break;  // transparent for SACX
      }
    }
  }

  const std::string& content() const { return content_; }
  HierarchyId hierarchy() const { return h_; }

 private:
  Status Error(std::string message) const {
    return status::ParseError(
        StrCat("hierarchy '", cmh_->hierarchy(h_).name, "': ", message));
  }

  const cmh::ConcurrentHierarchies* cmh_;
  HierarchyId h_;
  xml::Lexer lexer_;
  std::string content_;
  std::vector<std::string> stack_;
  size_t depth_ = 0;
  bool seen_root_ = false;
  std::optional<MarkupEvent> pending_end_;
};

}  // namespace

Status SacxParser::Parse(const cmh::ConcurrentHierarchies& cmh,
                         const std::vector<std::string_view>& sources,
                         SacxHandler* handler) {
  if (sources.size() != cmh.size()) {
    return status::InvalidArgument(StrFormat(
        "SACX needs %zu sources (one per hierarchy), got %zu", cmh.size(),
        sources.size()));
  }
  CXML_RETURN_IF_ERROR(handler->StartDocument(cmh.root_tag()));

  const size_t n = sources.size();
  std::vector<EventSource> streams;
  streams.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    streams.emplace_back(cmh, static_cast<HierarchyId>(i), sources[i]);
  }
  // Heads of the k streams (nullopt = exhausted).
  std::vector<std::optional<MarkupEvent>> heads(n);
  for (size_t i = 0; i < n; ++i) {
    CXML_ASSIGN_OR_RETURN(heads[i], streams[i].Next());
  }

  size_t emitted = 0;  // content emitted as fragments so far
  while (true) {
    // Pick the next event: min (pos, end<start, hierarchy).
    int best = -1;
    for (size_t i = 0; i < n; ++i) {
      if (!heads[i].has_value()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const MarkupEvent& a = *heads[i];
      const MarkupEvent& b = *heads[static_cast<size_t>(best)];
      if (a.pos != b.pos) {
        if (a.pos < b.pos) best = static_cast<int>(i);
      } else if (a.is_start != b.is_start) {
        if (!a.is_start) best = static_cast<int>(i);
      }
      // equal pos+kind: lower hierarchy wins (loop order already does)
    }
    if (best < 0) break;
    auto& src = streams[static_cast<size_t>(best)];
    MarkupEvent ev = std::move(*heads[static_cast<size_t>(best)]);

    // Flush the shared content fragment up to this event's position. The
    // source that produced the event has already decoded through ev.pos.
    if (ev.pos > emitted) {
      std::string_view fragment =
          std::string_view(src.content()).substr(emitted, ev.pos - emitted);
      CXML_RETURN_IF_ERROR(handler->Characters(fragment, emitted));
      emitted = ev.pos;
    }
    if (ev.is_start) {
      CXML_RETURN_IF_ERROR(
          handler->StartElement(src.hierarchy(), ev.event, ev.pos));
    } else {
      CXML_RETURN_IF_ERROR(
          handler->EndElement(src.hierarchy(), ev.event.name, ev.pos));
    }
    CXML_ASSIGN_OR_RETURN(heads[static_cast<size_t>(best)],
                          streams[static_cast<size_t>(best)].Next());
  }

  // All streams exhausted: verify content agreement, flush the tail.
  for (size_t i = 1; i < n; ++i) {
    if (streams[i].content() != streams[0].content()) {
      return status::ValidationError(StrCat(
          "hierarchy '", cmh.hierarchy(static_cast<HierarchyId>(i)).name,
          "' disagrees on content with hierarchy '", cmh.hierarchy(0).name,
          "' — a distributed document must encode identical content"));
    }
  }
  if (n > 0 && streams[0].content().size() > emitted) {
    std::string_view fragment =
        std::string_view(streams[0].content()).substr(emitted);
    CXML_RETURN_IF_ERROR(handler->Characters(fragment, emitted));
  }
  return handler->EndDocument();
}

}  // namespace cxml::sacx
