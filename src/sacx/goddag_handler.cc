#include "sacx/goddag_handler.h"

#include "common/strings.h"

namespace cxml::sacx {

using goddag::Goddag;
using goddag::NodeId;
using goddag::NodeKind;

GoddagHandler::GoddagHandler(const cmh::ConcurrentHierarchies& cmh)
    : cmh_(&cmh) {}

Status GoddagHandler::StartDocument(std::string_view root_tag) {
  g_ = std::make_unique<Goddag>(std::string(), cmh_->size(),
                                std::string(root_tag));
  g_->BindCmh(cmh_);
  stacks_.assign(cmh_->size(), {g_->root()});
  return Status::Ok();
}

Status GoddagHandler::Characters(std::string_view text, size_t pos) {
  if (text.empty()) return Status::Ok();
  if (pos != g_->content_.size()) {
    return status::Internal(StrFormat(
        "fragment at %zu, but content has %zu chars", pos,
        g_->content_.size()));
  }
  g_->content_ += text;
  NodeId leaf = g_->AllocNode(NodeKind::kLeaf);
  g_->chars_[leaf] = Interval(pos, pos + text.size());
  g_->leaf_index_[leaf] = g_->leaves_.size();
  g_->leaf_parents_[leaf].assign(g_->num_hierarchies(), g_->root());
  g_->leaves_.push_back(leaf);
  // The leaf hangs off the innermost open node of every hierarchy.
  for (HierarchyId h = 0; h < g_->num_hierarchies(); ++h) {
    NodeId top = stacks_[h].back();
    if (top == g_->root()) {
      g_->root_children_[h].push_back(leaf);
    } else {
      g_->children_[top].push_back(leaf);
    }
    g_->leaf_parents_[leaf][h] = top;
  }
  return Status::Ok();
}

Status GoddagHandler::StartElement(HierarchyId hierarchy,
                                   const xml::Event& event, size_t pos) {
  NodeId node = g_->AllocNode(NodeKind::kElement);
  g_->tag_[node] = event.name;
  g_->hierarchy_[node] = hierarchy;
  g_->attrs_[node] = event.attrs;
  g_->chars_[node] = Interval(pos, pos);
  NodeId top = stacks_[hierarchy].back();
  g_->parent_[node] = top;
  if (top == g_->root()) {
    g_->root_children_[hierarchy].push_back(node);
  } else {
    g_->children_[top].push_back(node);
  }
  stacks_[hierarchy].push_back(node);
  return Status::Ok();
}

Status GoddagHandler::EndElement(HierarchyId hierarchy, std::string_view tag,
                                 size_t pos) {
  auto& stack = stacks_[hierarchy];
  if (stack.size() <= 1) {
    return status::Internal("end element with empty SACX stack");
  }
  NodeId node = stack.back();
  if (g_->tag_[node] != tag) {
    return status::Internal(
        StrCat("SACX end tag '", std::string(tag), "' closes '",
               g_->tag_[node], "'"));
  }
  g_->chars_[node].end = pos;
  stack.pop_back();
  return Status::Ok();
}

Status GoddagHandler::EndDocument() {
  for (HierarchyId h = 0; h < g_->num_hierarchies(); ++h) {
    if (stacks_[h].size() != 1) {
      return status::Internal(StrFormat(
          "hierarchy %u has %zu unclosed elements at end of document", h,
          stacks_[h].size() - 1));
    }
  }
  g_->chars_[g_->root()] = Interval(0, g_->content_.size());
  finished_ = true;
  return Status::Ok();
}

Result<goddag::Goddag> GoddagHandler::Take() {
  if (!finished_ || g_ == nullptr) {
    return status::FailedPrecondition(
        "GoddagHandler::Take before a successful parse");
  }
  Goddag out = std::move(*g_);
  g_.reset();
  finished_ = false;
  return out;
}

Result<goddag::Goddag> ParseToGoddag(
    const cmh::ConcurrentHierarchies& cmh,
    const std::vector<std::string_view>& sources) {
  GoddagHandler handler(cmh);
  SacxParser parser;
  CXML_RETURN_IF_ERROR(parser.Parse(cmh, sources, &handler));
  return handler.Take();
}

}  // namespace cxml::sacx
