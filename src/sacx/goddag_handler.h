#ifndef CXML_SACX_GODDAG_HANDLER_H_
#define CXML_SACX_GODDAG_HANDLER_H_

#include <memory>
#include <vector>

#include "goddag/goddag.h"
#include "sacx/sacx.h"

namespace cxml::sacx {

/// SACX handler that assembles a GODDAG in a single streaming pass:
/// the merged event order *is* the GODDAG construction order — each
/// character fragment becomes one shared leaf, each start/end pair brackets
/// a subtree in its hierarchy. Memory never holds per-hierarchy DOMs,
/// which is SACX's advantage over the DOM-based goddag::Builder.
class GoddagHandler : public SacxHandler {
 public:
  /// `cmh` must outlive the handler and the produced Goddag.
  explicit GoddagHandler(const cmh::ConcurrentHierarchies& cmh);

  Status StartDocument(std::string_view root_tag) override;
  Status EndDocument() override;
  Status StartElement(HierarchyId hierarchy, const xml::Event& event,
                      size_t pos) override;
  Status EndElement(HierarchyId hierarchy, std::string_view tag,
                    size_t pos) override;
  Status Characters(std::string_view text, size_t pos) override;

  /// Takes the finished GODDAG; call exactly once after a successful
  /// SacxParser::Parse.
  Result<goddag::Goddag> Take();

 private:
  const cmh::ConcurrentHierarchies* cmh_;
  std::unique_ptr<goddag::Goddag> g_;
  /// Per-hierarchy stack of open nodes (bottom = root).
  std::vector<std::vector<goddag::NodeId>> stacks_;
  bool finished_ = false;
};

/// One-call convenience: SACX-parse `sources` into a GODDAG.
Result<goddag::Goddag> ParseToGoddag(
    const cmh::ConcurrentHierarchies& cmh,
    const std::vector<std::string_view>& sources);

}  // namespace cxml::sacx

#endif  // CXML_SACX_GODDAG_HANDLER_H_
