#ifndef CXML_SACX_SACX_H_
#define CXML_SACX_SACX_H_

#include <string>
#include <string_view>
#include <vector>

#include "cmh/hierarchy.h"
#include "common/result.h"
#include "xml/token.h"

namespace cxml::sacx {

using cmh::HierarchyId;

/// SACX (SAX for Concurrent XML, Iacob, Dekhtyar & Kaneko, WIDM 2004):
/// the per-hierarchy documents of a distributed document are tokenised
/// concurrently and their markup events are merged **by content
/// position** into a single stream. Character data is emitted as unified
/// fragments cut at every markup boundary of *any* hierarchy — exactly
/// the GODDAG leaf partition.
///
/// Event order at one content position `p`:
///   1. end-tags (any hierarchy; within a hierarchy innermost first),
///   2. start-tags,
///   3. the character fragment starting at `p`.
/// Ties across hierarchies break by hierarchy id, preserving each
/// hierarchy's own stream order.
class SacxHandler {
 public:
  virtual ~SacxHandler() = default;

  virtual Status StartDocument(std::string_view root_tag) {
    (void)root_tag;
    return Status::Ok();
  }
  virtual Status EndDocument() { return Status::Ok(); }
  /// `event.name`/`event.attrs` describe the element; `pos` is the
  /// content offset of its extent's start.
  virtual Status StartElement(HierarchyId hierarchy, const xml::Event& event,
                              size_t pos) = 0;
  virtual Status EndElement(HierarchyId hierarchy, std::string_view tag,
                            size_t pos) = 0;
  /// A shared content fragment `[pos, pos + text.size())` — one GODDAG
  /// leaf.
  virtual Status Characters(std::string_view text, size_t pos) = 0;
};

/// The streaming parser. Documents are consumed in lockstep; memory is
/// O(markup nesting + one content copy), never DOM-proportional.
class SacxParser {
 public:
  /// Parses one XML source per hierarchy of `cmh` and streams merged
  /// events into `handler`. Verifies shared root tag, per-hierarchy
  /// vocabulary membership, and content agreement across documents.
  Status Parse(const cmh::ConcurrentHierarchies& cmh,
               const std::vector<std::string_view>& sources,
               SacxHandler* handler);
};

}  // namespace cxml::sacx

#endif  // CXML_SACX_SACX_H_
