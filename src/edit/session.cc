#include "edit/session.h"

#include "common/strings.h"

namespace cxml::edit {

Result<EditSession> EditSession::Start(goddag::Goddag* g) {
  CXML_ASSIGN_OR_RETURN(Editor editor, Editor::Create(g));
  return EditSession(std::move(editor));
}

Status EditSession::Select(const Interval& chars) {
  if (chars.end > goddag().content().size() || chars.begin > chars.end) {
    return status::OutOfRange(StrFormat(
        "selection [%zu,%zu) outside content of size %zu", chars.begin,
        chars.end, goddag().content().size()));
  }
  selection_ = chars;
  return Status::Ok();
}

Status EditSession::SelectText(std::string_view needle) {
  size_t at = goddag().content().find(needle);
  if (at == std::string::npos) {
    return status::NotFound(
        StrCat("text '", std::string(needle), "' not found in content"));
  }
  selection_ = Interval(at, at + needle.size());
  return Status::Ok();
}

std::string_view EditSession::selected_text() const {
  return std::string_view(goddag().content())
      .substr(selection_.begin, selection_.length());
}

std::vector<std::string> EditSession::Menu(HierarchyId h) {
  return editor_.ApplicableTags(h, selection_);
}

Result<NodeId> EditSession::Apply(HierarchyId h, std::string_view tag,
                                  std::vector<xml::Attribute> attrs) {
  InsertOp op;
  op.hierarchy = h;
  op.tag = std::string(tag);
  op.attrs = std::move(attrs);
  op.chars = selection_;
  auto result = editor_.Insert(op);
  const char* hierarchy_name =
      goddag().cmh() != nullptr
          ? goddag().cmh()->hierarchy(h).name.c_str()
          : "?";
  if (result.ok()) {
    log_.push_back(StrFormat(
        "applied <%s> (%s) over [%zu,%zu) \"%s\"", op.tag.c_str(),
        hierarchy_name, selection_.begin, selection_.end,
        std::string(selected_text()).c_str()));
  } else {
    log_.push_back(StrFormat(
        "REJECTED <%s> (%s) over [%zu,%zu): %s", op.tag.c_str(),
        hierarchy_name, selection_.begin, selection_.end,
        result.status().message().c_str()));
  }
  return result;
}

EditSession::Mark EditSession::MarkState() const {
  Mark mark;
  mark.undo_depth = editor_.undo_depth();
  mark.log_size = log_.size();
  mark.selection = selection_;
  return mark;
}

Status EditSession::RollbackTo(const Mark& mark) {
  if (mark.undo_depth > editor_.undo_depth() ||
      mark.log_size > log_.size() || mark.log_size < committed_ops_) {
    return status::InvalidArgument(
        "rollback mark is not a past uncommitted state of this session");
  }
  while (editor_.undo_depth() > mark.undo_depth) {
    CXML_RETURN_IF_ERROR(editor_.Undo());
  }
  log_.resize(mark.log_size);
  selection_ = mark.selection;
  return Status::Ok();
}

std::vector<std::string> EditSession::PendingOps() const {
  return std::vector<std::string>(log_.begin() + committed_ops_, log_.end());
}

uint64_t EditSession::Commit() {
  ++commit_seq_;
  std::vector<std::string> ops = PendingOps();
  committed_ops_ = log_.size();
  // Index-based: a hook may itself AddCommitHook (the vector can grow
  // mid-iteration); hooks added during this commit fire with it.
  for (size_t i = 0; i < commit_hooks_.size(); ++i) {
    commit_hooks_[i](commit_seq_, ops);
  }
  return commit_seq_;
}

}  // namespace cxml::edit
