#include "edit/editor.h"

#include <algorithm>

#include "common/strings.h"
#include "dom/document.h"
#include "dtd/validator.h"
#include "goddag/serializer.h"

namespace cxml::edit {

Result<Editor> Editor::Create(goddag::Goddag* g) {
  if (g->cmh() == nullptr) {
    return status::FailedPrecondition(
        "Editor requires a GODDAG with a bound CMH (the DTDs drive "
        "prevalidation)");
  }
  Editor editor(g);
  CXML_ASSIGN_OR_RETURN(editor.compiled_, g->cmh()->CompileAll());
  return editor;
}

namespace {

/// Tags of the element children of `node` (root uses hierarchy h's list).
std::vector<std::string> ChildTagSequence(const goddag::Goddag& g,
                                          HierarchyId h, NodeId node) {
  const std::vector<NodeId>& children =
      g.is_root(node) ? g.root_children(h) : g.children(node);
  std::vector<std::string> tags;
  for (NodeId c : children) {
    if (g.is_element(c)) tags.push_back(g.tag(c));
  }
  return tags;
}

}  // namespace

Status Editor::CheckPotentialValidity(HierarchyId h, NodeId element) const {
  const dtd::CompiledDtd& compiled = compiled_[h];
  const std::string& tag =
      g_->is_root(element) ? g_->root_tag() : g_->tag(element);
  const dtd::CompiledDtd::ElementAutomata* ea = compiled.Find(tag);
  if (ea == nullptr) {
    return status::ValidationError(
        StrCat("element '", tag, "' is not declared in hierarchy '",
               g_->cmh()->hierarchy(h).name, "'"));
  }
  std::vector<std::string> children = ChildTagSequence(*g_, h, element);
  if (!ea->subsequence->IsPotentiallyValid(ea->nfa, children)) {
    std::string sequence = Join(
        std::vector<std::string_view>(children.begin(), children.end()),
        ",");
    return status::ValidationError(StrFormat(
        "children (%s) of '%s' cannot be extended to match %s — "
        "prevalidation rejects this edit",
        sequence.c_str(), tag.c_str(),
        ea->decl->model.ToString().c_str()));
  }
  return Status::Ok();
}

Result<NodeId> Editor::InsertImpl(const InsertOp& op, bool record) {
  CXML_ASSIGN_OR_RETURN(NodeId node,
                        g_->InsertElement(op.hierarchy, op.tag, op.attrs,
                                          op.chars));
  // Prevalidate the parent's new sequence and the new element's own
  // children; roll back on rejection.
  NodeId parent = g_->parent(node);
  Status st = CheckPotentialValidity(op.hierarchy, parent);
  if (st.ok()) st = CheckPotentialValidity(op.hierarchy, node);
  if (!st.ok()) {
    Status rollback = g_->RemoveElement(node);
    if (!rollback.ok()) {
      return status::Internal(
          StrCat("rollback after failed prevalidation failed: ",
                 rollback.message()));
    }
    return st;
  }
  if (record) {
    Applied record_entry;
    record_entry.kind = Applied::Kind::kInsert;
    record_entry.node = node;
    record_entry.op = op;
    undo_.push_back(std::move(record_entry));
    redo_.clear();
    delta_.Touch(node, op.hierarchy, op.tag);
  }
  return node;
}

Result<NodeId> Editor::Insert(const InsertOp& op) {
  return InsertImpl(op, /*record=*/true);
}

Status Editor::CanInsert(const InsertOp& op) {
  CXML_ASSIGN_OR_RETURN(NodeId node, InsertImpl(op, /*record=*/false));
  return g_->RemoveElement(node);
}

Status Editor::RemoveImpl(NodeId element, bool record) {
  if (element >= g_->arena_size() || !g_->is_element(element)) {
    return status::InvalidArgument("Remove expects an element node");
  }
  HierarchyId h = g_->hierarchy(element);
  InsertOp reverse;
  reverse.hierarchy = h;
  reverse.tag = g_->tag(element);
  reverse.attrs = g_->attributes(element);
  reverse.chars = g_->char_range(element);
  NodeId parent = g_->parent(element);

  CXML_RETURN_IF_ERROR(g_->RemoveElement(element));
  Status st = CheckPotentialValidity(h, parent);
  if (!st.ok()) {
    // Roll back: re-insert over the same extent restores the structure.
    auto undo = g_->InsertElement(h, reverse.tag, reverse.attrs,
                                  reverse.chars);
    if (!undo.ok()) {
      return status::Internal(
          StrCat("rollback after failed prevalidation failed: ",
                 undo.status().message()));
    }
    return st;
  }
  if (record) {
    delta_.Touch(element, h, reverse.tag);
    Applied record_entry;
    record_entry.kind = Applied::Kind::kRemove;
    record_entry.op = std::move(reverse);
    undo_.push_back(std::move(record_entry));
    redo_.clear();
  }
  return Status::Ok();
}

Status Editor::Remove(NodeId element) {
  return RemoveImpl(element, /*record=*/true);
}

Status Editor::SetAttribute(NodeId element, std::string_view name,
                            std::string_view value) {
  if (!g_->is_element(element)) {
    return status::InvalidArgument("SetAttribute expects an element");
  }
  HierarchyId h = g_->hierarchy(element);
  const dtd::ElementDecl* decl =
      g_->cmh()->hierarchy(h).dtd.FindElement(g_->tag(element));
  if (decl == nullptr) {
    return status::ValidationError(
        StrCat("element '", g_->tag(element), "' is not declared"));
  }
  const dtd::AttDef* def = decl->FindAttribute(name);
  if (def == nullptr && !StartsWith(name, "xml:")) {
    return status::ValidationError(
        StrCat("attribute '", std::string(name), "' is not declared on '",
               g_->tag(element), "'"));
  }
  if (def != nullptr && (def->type == dtd::AttType::kEnumeration ||
                         def->type == dtd::AttType::kNotation)) {
    if (std::find(def->enum_values.begin(), def->enum_values.end(),
                  std::string(value)) == def->enum_values.end()) {
      return status::ValidationError(
          StrCat("value '", std::string(value),
                 "' is not in the enumeration of attribute '",
                 std::string(name), "'"));
    }
  }
  if (def != nullptr && def->deflt == dtd::AttDefault::kFixed &&
      value != def->default_value) {
    return status::ValidationError(
        StrCat("attribute '", std::string(name), "' is #FIXED \"",
               def->default_value, "\""));
  }

  Applied record_entry;
  record_entry.kind = Applied::Kind::kSetAttribute;
  record_entry.node = element;
  record_entry.attr_name = std::string(name);
  const std::string* old = g_->FindAttribute(element, name);
  record_entry.had_old_value = old != nullptr;
  if (old != nullptr) record_entry.old_value = *old;
  g_->SetAttribute(element, name, value);
  undo_.push_back(std::move(record_entry));
  redo_.clear();
  return Status::Ok();
}

std::vector<std::string> Editor::ApplicableTags(HierarchyId h,
                                                const Interval& chars) {
  std::vector<std::string> out;
  if (h >= g_->num_hierarchies()) return out;
  for (const std::string& tag :
       g_->cmh()->hierarchy(h).dtd.ElementNames()) {
    if (tag == g_->root_tag()) continue;
    InsertOp op;
    op.hierarchy = h;
    op.tag = tag;
    op.chars = chars;
    if (CanInsert(op).ok()) out.push_back(tag);
  }
  return out;
}

Status Editor::ValidateStrict() const {
  for (HierarchyId h = 0; h < g_->num_hierarchies(); ++h) {
    CXML_ASSIGN_OR_RETURN(std::string xml,
                          goddag::SerializeHierarchy(*g_, h));
    CXML_ASSIGN_OR_RETURN(auto doc, dom::ParseDocument(xml));
    dtd::DtdValidator validator(compiled_[h]);
    Status st = validator.Check(*doc, g_->root_tag());
    if (!st.ok()) {
      return st.WithContext(
          StrCat("hierarchy '", g_->cmh()->hierarchy(h).name, "'"));
    }
  }
  return Status::Ok();
}

Status Editor::Undo() {
  if (undo_.empty()) {
    return status::FailedPrecondition("nothing to undo");
  }
  Applied entry = std::move(undo_.back());
  undo_.pop_back();
  switch (entry.kind) {
    case Applied::Kind::kInsert: {
      CXML_RETURN_IF_ERROR(g_->RemoveElement(entry.node));
      delta_.Touch(entry.node, entry.op.hierarchy, entry.op.tag);
      break;
    }
    case Applied::Kind::kRemove: {
      CXML_ASSIGN_OR_RETURN(
          NodeId node,
          g_->InsertElement(entry.op.hierarchy, entry.op.tag,
                            entry.op.attrs, entry.op.chars));
      entry.node = node;
      delta_.Touch(node, entry.op.hierarchy, entry.op.tag);
      break;
    }
    case Applied::Kind::kSetAttribute: {
      std::string current;
      const std::string* cur = g_->FindAttribute(entry.node,
                                                 entry.attr_name);
      bool had_current = cur != nullptr;
      if (cur != nullptr) current = *cur;
      if (entry.had_old_value) {
        g_->SetAttribute(entry.node, entry.attr_name, entry.old_value);
      } else {
        g_->RemoveAttribute(entry.node, entry.attr_name);
      }
      entry.had_old_value = had_current;
      entry.old_value = std::move(current);
      break;
    }
  }
  redo_.push_back(std::move(entry));
  return Status::Ok();
}

Status Editor::Redo() {
  if (redo_.empty()) {
    return status::FailedPrecondition("nothing to redo");
  }
  Applied entry = std::move(redo_.back());
  redo_.pop_back();
  switch (entry.kind) {
    case Applied::Kind::kInsert: {
      CXML_ASSIGN_OR_RETURN(
          NodeId node,
          g_->InsertElement(entry.op.hierarchy, entry.op.tag,
                            entry.op.attrs, entry.op.chars));
      entry.node = node;
      delta_.Touch(node, entry.op.hierarchy, entry.op.tag);
      break;
    }
    case Applied::Kind::kRemove: {
      CXML_RETURN_IF_ERROR(g_->RemoveElement(entry.node));
      delta_.Touch(entry.node, entry.op.hierarchy, entry.op.tag);
      break;
    }
    case Applied::Kind::kSetAttribute: {
      std::string current;
      const std::string* cur = g_->FindAttribute(entry.node,
                                                 entry.attr_name);
      bool had_current = cur != nullptr;
      if (cur != nullptr) current = *cur;
      if (entry.had_old_value) {
        g_->SetAttribute(entry.node, entry.attr_name, entry.old_value);
      } else {
        g_->RemoveAttribute(entry.node, entry.attr_name);
      }
      entry.had_old_value = had_current;
      entry.old_value = std::move(current);
      break;
    }
  }
  undo_.push_back(std::move(entry));
  return Status::Ok();
}

}  // namespace cxml::edit
