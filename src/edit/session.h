#ifndef CXML_EDIT_SESSION_H_
#define CXML_EDIT_SESSION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "edit/editor.h"

namespace cxml::edit {

/// The xTagger interaction model (paper §4: "xTagger allows users to
/// select a document fragment and choose the appropriate markup for it"):
/// a cursor/selection over the shared content plus the prevalidating
/// editor. Examples and the authoring demo drive this type.
class EditSession {
 public:
  static Result<EditSession> Start(goddag::Goddag* g);

  EditSession(EditSession&&) = default;
  EditSession& operator=(EditSession&&) = default;

  const goddag::Goddag& goddag() const { return editor_.goddag(); }
  Editor& editor() { return editor_; }
  /// The editor's structural-edit summary since the session's GODDAG
  /// was cloned — what EditTransaction::Commit threads into publish so
  /// the successor snapshot can patch the predecessor's index.
  const goddag::IndexDelta& index_delta() const {
    return editor_.index_delta();
  }

  /// Selects a character range of the content.
  Status Select(const Interval& chars);
  /// Selects the first occurrence of `needle` in the content.
  Status SelectText(std::string_view needle);
  /// Back to the fresh-session empty selection — the group-commit
  /// writer calls this between op-sets so no participant inherits
  /// another's cursor.
  void ClearSelection() { selection_ = Interval(); }
  const Interval& selection() const { return selection_; }
  std::string_view selected_text() const;

  /// Markup applicable to the current selection in hierarchy `h`
  /// (per-hierarchy "menu" of the authoring UI).
  std::vector<std::string> Menu(HierarchyId h);

  /// Applies a tag from hierarchy `h` to the selection.
  Result<NodeId> Apply(HierarchyId h, std::string_view tag,
                       std::vector<xml::Attribute> attrs = {});

  /// Log of applied operations (human-readable, newest last).
  const std::vector<std::string>& log() const { return log_; }

  // ------------------------------------------------------------ commits
  /// Hook fired by `Commit()` with the new commit sequence number and the
  /// operations it covers. Hooks are additive and fire in registration
  /// order; the service layer's DocumentStore registers one per edit
  /// transaction to notify version listeners (which is what invalidates
  /// version-keyed query caches), and callers may layer their own
  /// observers on top. Whatever registers a hook must outlive the
  /// session or every remaining `Commit()` call.
  using CommitHook =
      std::function<void(uint64_t seq, const std::vector<std::string>& ops)>;
  void AddCommitHook(CommitHook hook) {
    commit_hooks_.push_back(std::move(hook));
  }

  /// Operations applied since the last `Commit()`.
  std::vector<std::string> PendingOps() const;

  /// A point-in-time marker over the applied-op history. The service
  /// layer's group-commit writer takes one before each batch
  /// participant's ops and hands it back to `RollbackTo` when any of
  /// them fails, so one participant's partial op-set never leaks into
  /// the shared session.
  struct Mark {
    size_t undo_depth = 0;
    size_t log_size = 0;
    Interval selection;
  };
  Mark MarkState() const;

  /// Undoes every operation applied after `mark` (newest first) and
  /// drops their log lines — applied and rejected alike — leaving the
  /// session exactly as `MarkState()` saw it. Fails (without touching
  /// anything) when `mark` is not a past state of this session.
  Status RollbackTo(const Mark& mark);

  /// Marks every pending operation committed: bumps the commit sequence
  /// and fires the hooks. Returns the new sequence number.
  uint64_t Commit();
  uint64_t commit_count() const { return commit_seq_; }

 private:
  explicit EditSession(Editor editor) : editor_(std::move(editor)) {}

  Editor editor_;
  Interval selection_;
  std::vector<std::string> log_;
  std::vector<CommitHook> commit_hooks_;
  uint64_t commit_seq_ = 0;
  size_t committed_ops_ = 0;
};

}  // namespace cxml::edit

#endif  // CXML_EDIT_SESSION_H_
