#ifndef CXML_EDIT_SESSION_H_
#define CXML_EDIT_SESSION_H_

#include <string>
#include <vector>

#include "edit/editor.h"

namespace cxml::edit {

/// The xTagger interaction model (paper §4: "xTagger allows users to
/// select a document fragment and choose the appropriate markup for it"):
/// a cursor/selection over the shared content plus the prevalidating
/// editor. Examples and the authoring demo drive this type.
class EditSession {
 public:
  static Result<EditSession> Start(goddag::Goddag* g);

  EditSession(EditSession&&) = default;
  EditSession& operator=(EditSession&&) = default;

  const goddag::Goddag& goddag() const { return editor_.goddag(); }
  Editor& editor() { return editor_; }

  /// Selects a character range of the content.
  Status Select(const Interval& chars);
  /// Selects the first occurrence of `needle` in the content.
  Status SelectText(std::string_view needle);
  const Interval& selection() const { return selection_; }
  std::string_view selected_text() const;

  /// Markup applicable to the current selection in hierarchy `h`
  /// (per-hierarchy "menu" of the authoring UI).
  std::vector<std::string> Menu(HierarchyId h);

  /// Applies a tag from hierarchy `h` to the selection.
  Result<NodeId> Apply(HierarchyId h, std::string_view tag,
                       std::vector<xml::Attribute> attrs = {});

  /// Log of applied operations (human-readable, newest last).
  const std::vector<std::string>& log() const { return log_; }

 private:
  explicit EditSession(Editor editor) : editor_(std::move(editor)) {}

  Editor editor_;
  Interval selection_;
  std::vector<std::string> log_;
};

}  // namespace cxml::edit

#endif  // CXML_EDIT_SESSION_H_
