#ifndef CXML_EDIT_EDITOR_H_
#define CXML_EDIT_EDITOR_H_

#include <memory>
#include <string>
#include <vector>

#include "dtd/dtd.h"
#include "goddag/goddag.h"
#include "goddag/index_delta.h"

namespace cxml::edit {

using goddag::HierarchyId;
using goddag::NodeId;

/// One markup-insertion request: "select a document fragment and choose
/// the appropriate markup for it" (paper §4, xTagger).
struct InsertOp {
  HierarchyId hierarchy = 0;
  std::string tag;
  std::vector<xml::Attribute> attrs;
  Interval chars;
};

/// The editing engine behind xTagger: range-based markup insertion and
/// removal over a live GODDAG with **prevalidation** — "detects encodings
/// that cannot be extended to valid XML with further markup insertions"
/// (paper §4; Iacob, Dekhtyar & Dekhtyar, WebDB 2004).
///
/// Every mutating operation:
///  1. applies the structural change (well-formedness within the
///     hierarchy is enforced by the GODDAG mutation primitives),
///  2. checks *potential validity* of every element whose child sequence
///     changed (subsequence-of-content-model test),
///  3. rolls the change back and fails when the check rejects.
///
/// Operations are recorded for undo/redo.
class Editor {
 public:
  /// The GODDAG must have a CMH bound (DTD automata are compiled from
  /// it); `g` must outlive the editor.
  static Result<Editor> Create(goddag::Goddag* g);

  Editor(Editor&&) = default;
  Editor& operator=(Editor&&) = default;

  const goddag::Goddag& goddag() const { return *g_; }

  /// Non-mutating check: would `Insert(op)` succeed?
  /// (Implemented as apply + rollback; boundary leaf splits may remain,
  /// which does not change document semantics.)
  Status CanInsert(const InsertOp& op);

  /// Inserts markup with prevalidation. Returns the new element.
  Result<NodeId> Insert(const InsertOp& op);

  /// Removes an element (children are spliced into the parent), with
  /// prevalidation of the parent's new child sequence.
  Status Remove(NodeId element);

  /// Sets an attribute after checking it is declared (and enum-valid)
  /// for the element's type.
  Status SetAttribute(NodeId element, std::string_view name,
                      std::string_view value);

  /// The tags of hierarchy `h` that could be inserted over `chars`
  /// without breaking potential validity — xTagger's "choose the
  /// appropriate markup" menu.
  std::vector<std::string> ApplicableTags(HierarchyId h,
                                          const Interval& chars);

  /// Full DTD validation of every hierarchy of the current document
  /// (strict, not potential): empty result means "valid now".
  Status ValidateStrict() const;

  // ----------------------------------------------------------- undo
  bool CanUndo() const { return !undo_.empty(); }
  bool CanRedo() const { return !redo_.empty(); }
  Status Undo();
  Status Redo();
  size_t undo_depth() const { return undo_.size(); }

  /// Running summary of the structural edits applied since this editor
  /// (and therefore its clone of the base snapshot) was created —
  /// inserts, removes, and their undo/redo re-applications, attribute
  /// writes excluded (they never move index pools). DocumentStore
  /// publish hands it to the successor snapshot so the next cold query
  /// can patch the predecessor's SnapshotIndex instead of rebuilding
  /// (see goddag::IndexDelta for what is advisory vs authoritative).
  const goddag::IndexDelta& index_delta() const { return delta_; }

 private:
  /// A reversible record of one applied operation.
  struct Applied {
    enum class Kind { kInsert, kRemove, kSetAttribute };
    Kind kind;
    // kInsert: the created node; kRemove: parameters to re-insert.
    NodeId node = goddag::kInvalidNode;
    InsertOp op;
    // kSetAttribute: previous state.
    std::string attr_name;
    std::string old_value;
    bool had_old_value = false;
  };

  explicit Editor(goddag::Goddag* g) : g_(g) {}

  /// Potential validity of `element`'s current child sequence (and, when
  /// `element` is the root, of each hierarchy's root sequence).
  Status CheckPotentialValidity(HierarchyId h, NodeId element) const;

  Result<NodeId> InsertImpl(const InsertOp& op, bool record);
  Status RemoveImpl(NodeId element, bool record);

  goddag::Goddag* g_;
  std::vector<dtd::CompiledDtd> compiled_;
  std::vector<Applied> undo_;
  std::vector<Applied> redo_;
  goddag::IndexDelta delta_;
};

}  // namespace cxml::edit

#endif  // CXML_EDIT_EDITOR_H_
