#include "net/frame.h"

#include <utility>

#include "common/strings.h"

namespace cxml::net {

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  AppendFrame(&out, payload);
  return out;
}

void AppendFrame(std::string* out, std::string_view payload) {
  out->reserve(out->size() + kFrameMagic.size() + 24 + payload.size());
  out->append(kFrameMagic);
  out->append(StrFormat("%zu", payload.size()));
  out->push_back('\n');
  out->append(payload);
}

bool ParseDecimalU64(std::string_view digits, uint64_t* out) {
  if (digits.empty() || digits.size() > 19) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

Status FrameDecoder::Feed(std::string_view bytes) {
  if (state_ == State::kError) return error_;
  buffer_.append(bytes);
  for (;;) {
    if (state_ == State::kHeader) {
      size_t newline = buffer_.find('\n');
      if (newline == std::string::npos) {
        if (buffer_.size() > kMaxHeaderBytes) {
          error_ = status::ParseError(
              "CXP/1 header exceeds 32 bytes without a newline");
          state_ = State::kError;
          return error_;
        }
        return Status::Ok();  // header still arriving
      }
      std::string_view header(buffer_.data(), newline);
      if (header.substr(0, kFrameMagic.size()) != kFrameMagic) {
        error_ = status::ParseError(
            StrCat("bad CXP/1 frame magic in header '", header, "'"));
        state_ = State::kError;
        return error_;
      }
      std::string_view digits = header.substr(kFrameMagic.size());
      uint64_t length = 0;
      if (!ParseDecimalU64(digits, &length)) {
        error_ = status::ParseError(
            StrCat("bad CXP/1 frame length in header '", header, "'"));
        state_ = State::kError;
        return error_;
      }
      if (length > max_frame_bytes_) {
        error_ = status::ParseError(
            StrFormat("CXP/1 frame of %zu bytes exceeds the %zu-byte limit",
                      length, max_frame_bytes_));
        state_ = State::kError;
        return error_;
      }
      buffer_.erase(0, newline + 1);
      payload_length_ = length;
      state_ = State::kPayload;
    }
    if (buffer_.size() < payload_length_) return Status::Ok();
    ready_.push_back(buffer_.substr(0, payload_length_));
    buffer_.erase(0, payload_length_);
    payload_length_ = 0;
    state_ = State::kHeader;
  }
}

bool FrameDecoder::Next(std::string* payload) {
  if (ready_.empty()) return false;
  *payload = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace cxml::net
