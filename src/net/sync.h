#ifndef CXML_NET_SYNC_H_
#define CXML_NET_SYNC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace cxml::net {

/// One CXP/1 `SYNC <doc> <from_version>` answer: encoded WAL records
/// (wal::EncodeRecord framing — each is one length-prefixed response
/// item) with strictly ascending versions, all > from_version, plus
/// the document's current version at the primary so a caught-up
/// follower can measure its lag in versions even when no records ship.
struct SyncBatch {
  std::vector<std::string> records;
  uint64_t current_version = 0;
};

/// Where the server's SYNC verb reads replication batches from. The
/// durability layer (wal::WalManager) implements it; net only consumes
/// it, which keeps the module dependency one-way (wal → net). A server
/// without a source answers SYNC with ERR Unimplemented.
class SyncSource {
 public:
  virtual ~SyncSource() = default;

  /// Records after `from_version` for `document`, bounded by
  /// `max_bytes` (soft: when the follower is behind, at least one
  /// record always ships so it can make progress — a full-snapshot
  /// record may exceed the cap on its own). A follower older than the
  /// retained tail receives one kSnapshot record instead of history.
  virtual Result<SyncBatch> ReadSince(const std::string& document,
                                      uint64_t from_version,
                                      size_t max_bytes) = 0;
};

}  // namespace cxml::net

#endif  // CXML_NET_SYNC_H_
