#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "ingest/ingest.h"
#include "service/collection_query.h"

namespace cxml::net {

/// Per-connection state. The socket and the FrameDecoder belong to the
/// poll thread alone; `mu` guards the request queue and the outbox,
/// which are the only seams shared with worker threads.
struct Server::Conn {
  Conn(Fd socket, size_t max_frame_bytes)
      : fd(std::move(socket)), fd_number(fd.get()),
        decoder(max_frame_bytes) {}

  Fd fd;
  /// Survives fd.Close() so the conns_ map entry can still be erased.
  const int fd_number;
  FrameDecoder decoder;
  /// Last moment bytes arrived or response bytes drained — the
  /// read/idle deadline's clock. Poll-thread only (accept, read, and
  /// flush all happen there), so it needs no lock.
  std::chrono::steady_clock::time_point last_activity =
      std::chrono::steady_clock::now();

  /// One decoded request awaiting a worker. `shed` marks a request
  /// refused admission under overload at enqueue time: its payload is
  /// dropped and the worker answers ERR Unavailable in pipeline order
  /// without parsing or executing anything.
  struct Pending {
    std::string payload;
    bool shed = false;
  };

  std::mutex mu;
  /// Decoded request payloads awaiting a worker (FIFO per connection:
  /// pipelined requests are answered in order).
  std::deque<Pending> requests;
  /// At most one worker drains `requests` at a time.
  bool worker_active = false;
  /// Set (under `mu`) each time a worker finishes a request; the idle
  /// sweep converts it into an activity refresh, so the deadline clock
  /// measurably restarts when in-flight work completes — even though
  /// the sweep runs before that work's response is flushed.
  bool completed_work = false;
  /// Rendered response frames awaiting POLLOUT, from `out_offset` on.
  std::string outbox;
  size_t out_offset = 0;
  /// Set after a framing violation: one ERR frame goes out, then the
  /// connection closes once the outbox drains.
  bool close_after_flush = false;
  /// The poll thread dropped the connection; workers discard output.
  bool dead = false;

  /// The EBEGIN'd transaction, if any — cross-frame protocol state.
  /// Only the connection's single active worker touches it (requests
  /// are served strictly in order), so it needs no lock; dropping the
  /// connection discards it, which aborts the edit.
  std::unique_ptr<service::EditTransaction> txn;
  /// Every op the open transaction applied successfully, across EOP
  /// frames, in order. ECOMMIT renders them into the commit's WAL
  /// op-set so a cross-frame edit replays like a single-frame EDIT.
  /// Same single-worker discipline (and no lock) as `txn`.
  std::vector<EditOp> txn_ops;

  /// The QPREPARE handle table: qid → prepared query, same cross-frame
  /// single-worker discipline (and no lock) as `txn`. Dropped with the
  /// connection; bounded by ServerOptions::max_prepared_per_conn.
  std::map<uint64_t, service::QueryHandle> prepared;
  uint64_t next_qid = 1;

  bool HasOutput() {
    std::lock_guard<std::mutex> lock(mu);
    return out_offset < outbox.size();
  }
};

Server::Server(service::DocumentStore* store,
               service::QueryService* service, ServerOptions options)
    : store_(store), service_(service), options_(std::move(options)) {
  obs::Registry* registry = service_->registry();
  connections_accepted_ =
      registry->GetCounter("cxml_server_connections_total");
  frames_received_ = registry->GetCounter("cxml_server_frames_total");
  responses_sent_ = registry->GetCounter("cxml_server_responses_total");
  protocol_errors_ =
      registry->GetCounter("cxml_server_protocol_errors_total");
  request_errors_ =
      registry->GetCounter("cxml_server_request_errors_total");
  idle_disconnects_ =
      registry->GetCounter("cxml_server_idle_disconnects_total");
  shed_total_ = registry->GetCounter("cxml_shed_total");
  imports_total_ = registry->GetCounter("cxml_ingest_imports_total");
  import_errors_ = registry->GetCounter("cxml_ingest_import_errors_total");
  import_us_ = registry->GetHistogram("cxml_ingest_import_us");
  open_conns_ = registry->GetGauge("cxml_server_open_conns");
  request_us_ = registry->GetHistogram("cxml_server_request_us");
  read_only_.store(options_.read_only);
  if (options_.slow_query_us > 0) {
    service_->tracer().set_slow_query_us(options_.slow_query_us);
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) {
    return status::FailedPrecondition("server already started");
  }
  CXML_ASSIGN_OR_RETURN(
      listener_, ListenTcp(options_.bind_address, options_.port));
  CXML_RETURN_IF_ERROR(SetNonBlocking(listener_));
  CXML_ASSIGN_OR_RETURN(port_, LocalPort(listener_));

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    listener_.Close();
    return status::Internal(StrCat("pipe: ", strerror(errno)));
  }
  wake_read_ = Fd(pipe_fds[0]);
  wake_write_ = Fd(pipe_fds[1]);
  CXML_RETURN_IF_ERROR(SetNonBlocking(wake_read_));
  CXML_RETURN_IF_ERROR(SetNonBlocking(wake_write_));

  workers_ = std::make_unique<service::ThreadPool>(options_.num_workers);
  stopping_.store(false);
  running_.store(true);
  poll_thread_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  // Drain phase: the poll loop stops accepting and reading but keeps
  // flushing, so the acks of requests a worker already started still
  // reach their clients. Workers answer queued-unstarted requests
  // ERR Unavailable (they were never executed, so rejecting them
  // leaves no half-done state) and Shutdown() returns only when every
  // connection's queue is empty.
  draining_.store(true);
  Wake();
  if (workers_ != nullptr) workers_->Shutdown();
  // Give the still-running poll thread a bounded window to flush the
  // final responses before the sockets close under it.
  for (int i = 0; i < 200; ++i) {
    bool pending = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [fd, conn] : conns_) {
        if (conn->fd.valid() && conn->HasOutput()) {
          pending = true;
          break;
        }
      }
    }
    if (!pending) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stopping_.store(true);
  Wake();
  if (poll_thread_.joinable()) poll_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    conn->dead = true;
    conn->fd.Close();
  }
  open_conns_->Add(-static_cast<int64_t>(conns_.size()));
  conns_.clear();
  listener_.Close();
  wake_read_.Close();
  wake_write_.Close();
}

void Server::Wake() {
  char byte = 'w';
  // Nonblocking: a full pipe already guarantees a pending wakeup.
  ssize_t ignored = write(wake_write_.get(), &byte, 1);
  (void)ignored;
}

void Server::PollLoop() {
  std::vector<struct pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  // Set when accept() failed hard (EMFILE etc.): skip the listener for
  // one bounded-timeout round instead of busy-spinning on a level-
  // triggered POLLIN that accept can't clear.
  bool accept_backoff = false;
  while (!stopping_.load()) {
    // Drain mode (Stop() in progress): no accepts, no reads — only
    // flush what workers still produce, on a short fixed timeout.
    const bool draining = draining_.load();
    // Enforce the read/idle deadline first so expired connections are
    // gone before this round's pollfd set is built.
    int timeout = draining ? 20 : SweepIdle();
    if (accept_backoff) timeout = timeout < 0 ? 50 : std::min(timeout, 50);
    fds.clear();
    polled.clear();
    fds.push_back({listener_.get(),
                   static_cast<short>(accept_backoff || draining ? 0 : POLLIN),
                   0});
    fds.push_back({wake_read_.get(), POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [fd, conn] : conns_) {
        short events = 0;
        {
          std::lock_guard<std::mutex> conn_lock(conn->mu);
          if (!conn->close_after_flush && !draining) events |= POLLIN;
          if (conn->out_offset < conn->outbox.size()) events |= POLLOUT;
        }
        fds.push_back({fd, events, 0});
        polled.push_back(conn);
      }
    }

    int ready = poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; Stop() cleans up
    }
    if (stopping_.load()) break;

    if ((fds[1].revents & POLLIN) != 0) {
      char drain[256];
      while (read(wake_read_.get(), drain, sizeof(drain)) > 0) {
      }
    }
    accept_backoff = false;
    if (!draining && (fds[0].revents & POLLIN) != 0) {
      accept_backoff = !AcceptNew();
    }

    for (size_t i = 2; i < fds.size(); ++i) {
      const std::shared_ptr<Conn>& conn = polled[i - 2];
      short revents = fds[i].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        CloseConn(conn);
        continue;
      }
      if (!draining && (revents & (POLLIN | POLLHUP)) != 0) ReadFrom(conn);
      // ReadFrom may have closed the connection (EOF / recv error).
      if (!conn->fd.valid()) continue;
      // Workers signalled output through the wake pipe; flushing every
      // pending outbox here (not only on POLLOUT) saves a poll round
      // per response.
      if (conn->HasOutput()) FlushTo(conn);
    }
  }
}

int Server::SweepIdle() {
  if (options_.idle_timeout_ms <= 0) return -1;
  const auto deadline = std::chrono::milliseconds(options_.idle_timeout_ms);
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<Conn>> expired;
  int next_ms = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [fd, conn] : conns_) {
      bool busy;
      {
        std::lock_guard<std::mutex> conn_lock(conn->mu);
        // In-flight server-side work exempts the connection; a
        // pending *outbox* deliberately does not — FlushTo refreshes
        // the clock on real drain progress, so a peer that stops
        // reading its response still times out (slowloris guard).
        busy = conn->worker_active || !conn->requests.empty();
        if (conn->completed_work) {
          // Work finished since the last sweep (possibly with its
          // response not yet flushed): that was activity, even though
          // the worker can't touch the poll-thread-owned clock itself.
          conn->completed_work = false;
          conn->last_activity = now;
        }
      }
      if (busy) {
        // A client waiting on a slow in-flight request is not idle —
        // the deadline clock restarts when the work finishes.
        conn->last_activity = now;
        continue;
      }
      auto idle = now - conn->last_activity;
      if (idle >= deadline) {
        expired.push_back(conn);
        continue;
      }
      int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - idle)
              .count()) +
          1;
      next_ms = next_ms < 0 ? remaining : std::min(next_ms, remaining);
    }
  }
  for (const std::shared_ptr<Conn>& conn : expired) {
    // Closing aborts any open EBEGIN transaction with the connection;
    // in-flight workers discard their output into the dead outbox.
    idle_disconnects_->Add();
    CloseConn(conn);
  }
  return next_ms;
}

bool Server::AcceptNew() {
  for (;;) {
    int fd = accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      // EMFILE/ENFILE and friends leave the pending connection queued,
      // so the listener stays readable — tell the poll loop to back
      // off instead of spinning.
      return false;
    }
    Fd socket(fd);
    if (fault::Injector::Check(options_.injector, "net.accept")) {
      continue;  // injected accept failure: RAII closes the new socket
    }
    if (!SetNonBlocking(socket).ok() || !SetNoDelay(socket).ok()) {
      continue;  // RAII closes the broken socket
    }
    auto conn =
        std::make_shared<Conn>(std::move(socket), options_.max_frame_bytes);
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.emplace(conn->fd_number, conn);
    }
    connections_accepted_->Add();
    open_conns_->Add();
  }
}

void Server::ReadFrom(const std::shared_ptr<Conn>& conn) {
  char buffer[64 * 1024];
  bool enqueued = false;
  bool close_now = false;
  for (;;) {
    ssize_t n = recv(conn->fd.get(), buffer, sizeof(buffer), 0);
    if (n == 0) {
      // Orderly EOF. Undelivered responses have no reader; drop the
      // connection (in-flight workers discard into the dead outbox).
      close_now = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_now = true;
      break;
    }
    conn->last_activity = std::chrono::steady_clock::now();
    Status fed =
        conn->decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
    std::string payload;
    while (conn->decoder.Next(&payload)) {
      frames_received_->Add();
      if (fault::Injector::Check(options_.injector, "net.read_drop")) {
        // Injected mid-read connection loss: the decoded request (and
        // anything behind it) vanishes without a response, exactly as
        // a peer reset would make it.
        close_now = true;
        break;
      }
      std::lock_guard<std::mutex> lock(conn->mu);
      // Admission control: over either queue bound the request is
      // remembered only as a shed marker (payload dropped — bounded
      // memory), and the worker answers it ERR Unavailable in order.
      bool shed =
          conn->requests.size() >= options_.max_queued_per_conn ||
          queued_total_.load(std::memory_order_relaxed) >=
              options_.max_queued_global;
      if (shed) {
        shed_total_->Add();
        conn->requests.push_back({std::string(), true});
      } else {
        queued_total_.fetch_add(1, std::memory_order_relaxed);
        conn->requests.push_back({std::move(payload), false});
      }
      enqueued = true;
    }
    if (close_now) break;
    if (!fed.ok()) {
      // Framing is unrecoverable: poison the connection — drop queued
      // requests (their responses could otherwise land after the ERR
      // or be cut off mid-flush) so the ERR frame is the last thing
      // this client reads, then close once it drains.
      protocol_errors_->Add();
      std::lock_guard<std::mutex> lock(conn->mu);
      size_t admitted = 0;
      for (const Conn::Pending& pending : conn->requests) {
        if (!pending.shed) ++admitted;
      }
      if (admitted > 0) {
        queued_total_.fetch_sub(admitted, std::memory_order_relaxed);
      }
      conn->requests.clear();
      enqueued = false;
      AppendFrame(&conn->outbox, RenderError(fed));
      conn->close_after_flush = true;
      break;
    }
    if (static_cast<size_t>(n) < sizeof(buffer)) break;
  }

  if (enqueued) {
    bool spawn = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->worker_active && !conn->requests.empty()) {
        conn->worker_active = true;
        spawn = true;
      }
    }
    if (spawn && !workers_->Submit([this, conn] { ServeConnection(conn); })) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->worker_active = false;  // shutting down; Stop() closes us
    }
  }
  if (close_now) CloseConn(conn);
}

void Server::FlushTo(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (conn->out_offset < conn->outbox.size()) {
      ssize_t n = send(conn->fd.get(), conn->outbox.data() + conn->out_offset,
                       conn->outbox.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_offset += static_cast<size_t>(n);
        // A peer actively draining a large response is not idle, even
        // if it has nothing new to ask yet.
        conn->last_activity = std::chrono::steady_clock::now();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_now = true;  // peer vanished mid-response
      break;
    }
    if (conn->out_offset == conn->outbox.size()) {
      conn->outbox.clear();
      conn->out_offset = 0;
      if (conn->close_after_flush) close_now = true;
    } else if (conn->out_offset > (1u << 20)) {
      // Keep a slow reader's backlog from pinning flushed bytes.
      conn->outbox.erase(0, conn->out_offset);
      conn->out_offset = 0;
    }
  }
  if (close_now) CloseConn(conn);
}

void Server::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->dead = true;
    // Un-admit anything still queued, or the global shed bound would
    // count phantom requests forever after the connection dies.
    size_t admitted = 0;
    for (const Conn::Pending& pending : conn->requests) {
      if (!pending.shed) ++admitted;
    }
    if (admitted > 0) {
      queued_total_.fetch_sub(admitted, std::memory_order_relaxed);
    }
    conn->requests.clear();
  }
  conn->fd.Close();
  std::lock_guard<std::mutex> lock(mu_);
  // erase() is what decides whether *this* call closed the connection
  // — CloseConn can race nothing (poll thread only), but it can be
  // reached twice for one conn (e.g. POLLERR after an idle expiry), and
  // the gauge must drop exactly once.
  if (conns_.erase(conn->fd_number) > 0) open_conns_->Sub();
}

void Server::ServeConnection(std::shared_ptr<Conn> conn) {
  for (;;) {
    Conn::Pending pending;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead || conn->requests.empty()) {
        conn->worker_active = false;
        return;
      }
      pending = std::move(conn->requests.front());
      conn->requests.pop_front();
    }
    if (!pending.shed) {
      queued_total_.fetch_sub(1, std::memory_order_relaxed);
    }
    std::string response;
    if (pending.shed) {
      // Refused admission under overload: answer without executing.
      response = RenderError(status::Unavailable(StrFormat(
          "server overloaded; retry_after_ms=%d",
          options_.shed_retry_after_ms)));
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->dead && !conn->close_after_flush) {
          AppendFrame(&conn->outbox, response);
        }
        conn->completed_work = true;
      }
      responses_sent_->Add();
      Wake();
      continue;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      // Stop() in progress: this request was queued but never started,
      // so rejecting it leaves no half-done state — unlike the request
      // a worker is mid-way through, which runs to completion and acks.
      shed_total_->Add();
      response = RenderError(status::Unavailable(StrFormat(
          "server shutting down; retry_after_ms=%d",
          options_.shed_retry_after_ms)));
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->dead && !conn->close_after_flush) {
          AppendFrame(&conn->outbox, response);
        }
        conn->completed_work = true;
      }
      responses_sent_->Add();
      Wake();
      continue;
    }
    // One trace per request, opened before decode so its start is the
    // request's t0; Finish stamps the total, applies the slow-query
    // threshold, and samples it into the TRACE ring.
    obs::Trace::Clock::time_point started = obs::Trace::Clock::now();
    obs::TracePtr trace = service_->tracer().Start();
    response = HandleRequest(conn.get(), pending.payload, trace);
    if (auto stall =
            fault::Injector::Check(options_.injector, "net.write_stall_ms")) {
      // Injected response stall: the worker (not the poll thread)
      // sleeps, so one slow response models a congested peer without
      // freezing every connection.
      std::this_thread::sleep_for(std::chrono::milliseconds(stall.value));
    }
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      // close_after_flush means the connection was poisoned by a
      // framing error: nothing may follow the ERR frame.
      if (!conn->dead && !conn->close_after_flush) {
        AppendFrame(&conn->outbox, response);
      }
      conn->completed_work = true;
    }
    service_->tracer().Finish(trace);
    request_us_->Observe(
        std::chrono::duration<double, std::micro>(
            obs::Trace::Clock::now() - started)
            .count());
    responses_sent_->Add();
    Wake();
  }
}

std::string Server::HandleRequest(Conn* conn, std::string_view payload,
                                  const obs::TracePtr& trace) {
  obs::TraceSpan decode(trace, "decode");
  Result<Request> request = ParseRequest(payload);
  if (request.ok() && trace != nullptr) {
    trace->set_label(request->document.empty()
                         ? std::string(VerbToString(request->verb))
                         : StrCat(VerbToString(request->verb), " ",
                                  request->document));
  }
  decode.End();
  Result<std::string> response =
      request.ok() ? Dispatch(conn, *request, trace)
                   : Result<std::string>(request.status());
  if (response.ok()) return std::move(response).value();
  request_errors_->Add();
  return RenderError(response.status());
}

Result<std::string> Server::Dispatch(Conn* conn, const Request& request,
                                     const obs::TracePtr& trace) {
  if (read_only_.load(std::memory_order_relaxed)) {
    switch (request.verb) {
      case Verb::kEdit:
      case Verb::kEditBegin:
      case Verb::kEditOp:
      case Verb::kEditCommit:
      case Verb::kEditAbort:
      case Verb::kRegister:
      case Verb::kImport:
      case Verb::kRemove:
        return status::FailedPrecondition(StrCat(
            VerbToString(request.verb),
            " rejected: this server is read-only (replication follower)"));
      default:
        break;
    }
  }
  switch (request.verb) {
    case Verb::kPing:
      return RenderOk();
    case Verb::kList:
      return RenderItems(store_->ListDocuments(), 0, false);
    case Verb::kStat:
      return DoStat();
    case Verb::kMetrics:
      return DoMetrics();
    case Verb::kTrace:
      return DoTrace(request);
    case Verb::kSync:
      return DoSync(request);
    case Verb::kPromote:
      return DoPromote();
    case Verb::kFault:
      return DoFault(request);
    case Verb::kQuery:
      return DoQuery(request, trace);
    case Verb::kQueryPrepare:
      return DoQueryPrepare(conn, request);
    case Verb::kQueryRun:
      return DoQueryRun(conn, request, trace);
    case Verb::kEdit:
      return DoEdit(request);
    case Verb::kEditBegin:
      return DoEditBegin(conn, request);
    case Verb::kEditOp:
      return DoEditOp(conn, request);
    case Verb::kEditCommit:
      return DoEditCommit(conn);
    case Verb::kEditAbort:
      return DoEditAbort(conn);
    case Verb::kRegister: {
      if (!options_.allow_register) {
        return status::Unimplemented(
            "REGISTER is disabled on this server");
      }
      CXML_RETURN_IF_ERROR(
          store_->RegisterBytes(request.document, request.body));
      // Registration always publishes version 1.
      return RenderVersion(1);
    }
    case Verb::kImport:
      return DoImport(request);
    case Verb::kCollectionQuery:
      return DoCollectionQuery(conn, request, trace);
    case Verb::kRemove: {
      if (!options_.allow_register) {
        return status::Unimplemented("REMOVE is disabled on this server");
      }
      CXML_RETURN_IF_ERROR(store_->Remove(request.document));
      return RenderOk();
    }
  }
  return status::Internal("unhandled CXP/1 verb");
}

Result<std::string> Server::DoQuery(const Request& request,
                                    const obs::TracePtr& trace) {
  // Resolve to a prepared handle first — the same compile-or-cache
  // path the string Execute takes internally — so the trace label can
  // carry the canonical query hash (the result-cache identity, and the
  // join key against the slow-query log). A compile failure falls back
  // to the string path, which accounts the failed request exactly as
  // it always has.
  Result<service::QueryHandle> handle =
      service_->Prepare(request.body, request.kind);
  if (!handle.ok()) {
    service::QueryResponse response =
        service_->Execute({request.document, request.body, request.kind});
    if (!response.ok()) return response.status;
    return RenderItems(*response.items, response.version,
                       response.cache_hit);
  }
  if (trace != nullptr) {
    trace->set_label(StrFormat(
        "QUERY %s %s hash=%016llx", request.document.c_str(),
        request.kind == service::QueryKind::kXPath ? "XPATH" : "XQUERY",
        static_cast<unsigned long long>((*handle)->canonical_hash)));
  }
  return RunPrepared(request.document, *handle, trace);
}

Result<std::string> Server::RunPrepared(const std::string& document,
                                        const service::QueryHandle& handle,
                                        const obs::TracePtr& trace) {
  obs::TraceSpan service_span(trace, "service");
  service::QueryResponse response =
      service_->Execute(document, handle, trace, service_span.index());
  service_span.End();
  if (!response.ok()) return response.status;
  obs::TraceSpan respond(trace, "respond");
  return RenderItems(*response.items, response.version, response.cache_hit);
}

Result<std::string> Server::DoQueryPrepare(Conn* conn,
                                           const Request& request) {
  if (conn->prepared.size() >= options_.max_prepared_per_conn) {
    return status::FailedPrecondition(StrFormat(
        "too many prepared queries on this connection (max %zu)",
        options_.max_prepared_per_conn));
  }
  // Compilation is document-independent: a bad expression fails here,
  // once, instead of on every QRUN. The service dedupes by canonical
  // text, so equal queries from other connections share the handle.
  CXML_ASSIGN_OR_RETURN(service::QueryHandle handle,
                        service_->Prepare(request.body, request.kind));
  uint64_t qid = conn->next_qid++;
  conn->prepared.emplace(qid, std::move(handle));
  // The qid rides in the version slot of the OK line.
  return RenderVersion(qid);
}

Result<std::string> Server::DoQueryRun(Conn* conn, const Request& request,
                                       const obs::TracePtr& trace) {
  auto it = conn->prepared.find(request.qid);
  if (it == conn->prepared.end()) {
    return status::NotFound(StrFormat(
        "unknown prepared query id %llu on this connection",
        static_cast<unsigned long long>(request.qid)));
  }
  if (trace != nullptr) {
    trace->set_label(StrFormat(
        "QRUN %s qid=%llu hash=%016llx", request.document.c_str(),
        static_cast<unsigned long long>(request.qid),
        static_cast<unsigned long long>(it->second->canonical_hash)));
  }
  return RunPrepared(request.document, it->second, trace);
}

Result<std::string> Server::DoImport(const Request& request) {
  if (!options_.allow_register) {
    return status::Unimplemented("IMPORT is disabled on this server");
  }
  if (request.body.size() > options_.max_import_bytes) {
    import_errors_->Add();
    return status::InvalidArgument(StrFormat(
        "IMPORT body of %zu bytes exceeds the %zu-byte cap",
        request.body.size(), options_.max_import_bytes));
  }
  Result<ingest::Format> format = ingest::ParseFormat(request.format);
  if (!format.ok()) {
    import_errors_->Add();
    return format.status();
  }
  const auto started = std::chrono::steady_clock::now();
  ingest::ImportOptions opts;
  opts.format = *format;
  Result<ingest::ImportedDocument> imported =
      ingest::Import(request.body, opts);
  if (!imported.ok()) {
    // A parse or convention error rejects the frame before the store
    // is touched — nothing is registered, LIST is unchanged.
    import_errors_->Add();
    return imported.status().WithContext(
        StrCat("importing '", request.document, "'"));
  }
  // Publication rides the standard Register path so the store's
  // version listeners fire: a WAL-armed server checkpoints the import
  // durably (kSnapshot record) and followers replicate it over SYNC,
  // exactly like a REGISTER upload.
  CXML_RETURN_IF_ERROR(
      store_->Register(request.document, std::move(imported->doc)));
  imports_total_->Add();
  import_us_->Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count()));
  return RenderVersion(1);
}

Result<std::string> Server::DoCollectionQuery(Conn* conn,
                                              const Request& request,
                                              const obs::TracePtr& trace) {
  auto it = conn->prepared.find(request.qid);
  if (it == conn->prepared.end()) {
    return status::NotFound(StrFormat(
        "unknown prepared query id %llu on this connection",
        static_cast<unsigned long long>(request.qid)));
  }
  if (trace != nullptr) {
    trace->set_label(StrFormat(
        "QCOLL %s qid=%llu hash=%016llx", request.pattern.c_str(),
        static_cast<unsigned long long>(request.qid),
        static_cast<unsigned long long>(it->second->canonical_hash)));
  }
  obs::TraceSpan service_span(trace, "service");
  service::CollectionQueryOptions copts;
  copts.max_results = options_.max_collection_results;
  service::CollectionResponse response = service::RunCollectionQuery(
      service_, request.pattern, it->second, copts, trace,
      service_span.index());
  service_span.End();
  if (!response.ok()) return response.status;
  obs::TraceSpan respond(trace, "respond");
  // One wire item per result, document-prefixed, already in
  // (document, rank) order; the fan-out width rides in the version
  // slot and a truncated collection clears the hit flag.
  std::vector<std::string> items;
  items.reserve(response.total_items);
  for (const service::CollectionDocResult& doc : response.docs) {
    for (const std::string& item : doc.items) {
      items.push_back(StrCat(doc.document, "\t", item));
    }
  }
  return RenderItems(items, response.matched, !response.truncated);
}

Result<std::string> Server::DoEdit(const Request& request) {
  // The op-set joins the document's writer pipeline: grouped with
  // other pending EDITs into one clone + one publish + one cache
  // invalidation. A failing op (prevalidation, overlap, range) fails
  // only this op-set — as ERR with the op's own status — while the
  // rest of the batch commits. The op lines ride along as the WAL
  // payload: the same text the wire carried replays the commit.
  service::EditResponse response = service_->ExecuteEdit(
      request.document,
      [ops = request.ops](edit::EditSession& session) -> Status {
        for (const EditOp& op : ops) {
          if (op.kind == EditOp::Kind::kSelect) {
            CXML_RETURN_IF_ERROR(session.Select(op.chars));
          } else {
            CXML_RETURN_IF_ERROR(
                session.Apply(op.hierarchy, op.tag).status());
          }
        }
        return Status::Ok();
      },
      {RenderOps(request.ops)});
  if (!response.ok()) return response.status;
  return RenderVersion(response.version);
}

Result<std::string> Server::DoEditBegin(Conn* conn,
                                        const Request& request) {
  if (conn->txn != nullptr) {
    return status::FailedPrecondition(StrCat(
        "connection already has an open transaction on '",
        conn->txn->document(), "'"));
  }
  CXML_ASSIGN_OR_RETURN(service::EditTransaction txn,
                        store_->BeginEdit(request.document));
  conn->txn =
      std::make_unique<service::EditTransaction>(std::move(txn));
  conn->txn_ops.clear();
  return RenderVersion(conn->txn->base_version());
}

Result<std::string> Server::DoEditOp(Conn* conn, const Request& request) {
  if (conn->txn == nullptr) {
    return status::FailedPrecondition("EOP without an open transaction");
  }
  // A failed op leaves the transaction open: the session prevalidated
  // and rejected it, nothing was applied, and the client may try a
  // different range or EABORT.
  for (const EditOp& op : request.ops) {
    if (op.kind == EditOp::Kind::kSelect) {
      CXML_RETURN_IF_ERROR(conn->txn->session().Select(op.chars));
    } else {
      CXML_RETURN_IF_ERROR(
          conn->txn->session().Apply(op.hierarchy, op.tag).status());
    }
    // Recorded only once applied: a rejected op changed nothing, so it
    // must not appear in the commit's replay payload.
    conn->txn_ops.push_back(op);
  }
  return RenderOk();
}

Result<std::string> Server::DoEditCommit(Conn* conn) {
  if (conn->txn == nullptr) {
    return status::FailedPrecondition(
        "ECOMMIT without an open transaction");
  }
  // Win or lose, the transaction is finished for this connection — a
  // conflicting (FailedPrecondition) commit cannot retry; the client
  // starts over from the new base, as in-process losers do. The commit
  // itself queues behind the document's pending pipeline writes (FIFO),
  // so a group commit the client observed stays observed.
  std::unique_ptr<service::EditTransaction> txn = std::move(conn->txn);
  std::string document = txn->document();
  // The frames' accumulated ops become one WAL op-set: EOP selections
  // are cumulative across frames (no ClearSelection between them), so
  // replaying them back-to-back in a single session reproduces the
  // transaction's final state exactly.
  std::vector<std::string> wal_op_sets;
  if (!conn->txn_ops.empty()) {
    wal_op_sets.push_back(RenderOps(conn->txn_ops));
  }
  conn->txn_ops.clear();
  service::EditResponse response =
      service_
          ->SubmitCommit(std::move(document), std::move(txn),
                         std::move(wal_op_sets))
          .get();
  if (!response.ok()) return response.status;
  return RenderVersion(response.version);
}

Result<std::string> Server::DoEditAbort(Conn* conn) {
  if (conn->txn == nullptr) {
    return status::FailedPrecondition(
        "EABORT without an open transaction");
  }
  conn->txn.reset();  // drops the private clone; nothing was published
  conn->txn_ops.clear();
  return RenderOk();
}

Result<std::string> Server::DoMetrics() {
  // One item: the registry's whole Prometheus-style exposition. The
  // server's own counters live in the same registry, so this is the
  // process's single metrics surface.
  return RenderItems({service_->registry()->RenderText()}, 0, false);
}

Result<std::string> Server::DoTrace(const Request& request) {
  return RenderItems(service_->tracer().Recent(request.count), 0, false);
}

Result<std::string> Server::DoSync(const Request& request) {
  if (options_.sync_source == nullptr) {
    return status::Unimplemented(
        "SYNC requires a durability log (start with --data-dir)");
  }
  // A quarter of the frame budget bounds the payload bytes; framing,
  // item headers, and the snapshot-fallback record (always shipped
  // whole) ride in the remaining slack.
  CXML_ASSIGN_OR_RETURN(
      SyncBatch batch,
      options_.sync_source->ReadSince(request.document, request.from_version,
                                      options_.max_frame_bytes / 4));
  return RenderItems(batch.records, batch.current_version, false);
}

Result<std::string> Server::DoPromote() {
  if (options_.promote_handler == nullptr) {
    return status::FailedPrecondition(
        "PROMOTE rejected: this server was born a primary (no follower "
        "to promote)");
  }
  // The handler drains the follower's replication tail, seals the
  // inherited log with a promotion record, and reports the version
  // frontier it promoted at. Only after it succeeds do writes open —
  // so the first accepted EDIT lands in a sealed, fresh WAL epoch.
  CXML_ASSIGN_OR_RETURN(uint64_t frontier, options_.promote_handler());
  read_only_.store(false, std::memory_order_relaxed);
  return RenderVersion(frontier);
}

Result<std::string> Server::DoFault(const Request& request) {
  fault::Injector* injector = options_.injector;
  if (injector == nullptr) {
    return status::Unimplemented(
        "FAULT requires fault injection support (start with --fault-seed "
        "or --fault)");
  }
  if (request.fault_action == "LIST") {
    return RenderItems(injector->Describe(), injector->seed(), false);
  }
  if (request.fault_action == "CLEAR") {
    injector->DisarmAll();
    return RenderOk();
  }
  if (request.fault_action == "SEED") {
    // The parser validated the token as a decimal u64.
    injector->Reseed(std::strtoull(request.fault_spec.c_str(), nullptr, 10));
    return RenderOk();
  }
  if (request.fault_action == "ARM") {
    CXML_RETURN_IF_ERROR(
        injector->Arm(request.fault_point, request.fault_spec));
    return RenderOk();
  }
  if (request.fault_action == "DISARM") {
    if (!injector->Disarm(request.fault_point)) {
      return status::NotFound(
          StrCat("fault point '", request.fault_point, "' is not armed"));
    }
    return RenderOk();
  }
  return status::Internal(
      StrCat("unhandled FAULT action '", request.fault_action, "'"));
}

Result<std::string> Server::DoStat() {
  service::ServiceStats stats = service_->stats();
  std::vector<std::string> items;
  items.push_back(
      StrFormat("documents %zu", store_->ListDocuments().size()));
  items.push_back(StrFormat("service_requests %llu",
                            static_cast<unsigned long long>(stats.requests)));
  items.push_back(StrFormat("service_batches %llu",
                            static_cast<unsigned long long>(stats.batches)));
  items.push_back(StrFormat("service_errors %llu",
                            static_cast<unsigned long long>(stats.errors)));
  items.push_back(StrFormat(
      "service_prepares %llu",
      static_cast<unsigned long long>(stats.prepares)));
  items.push_back(StrFormat(
      "index_patches %llu",
      static_cast<unsigned long long>(stats.index_patches)));
  items.push_back(StrFormat(
      "index_rebuilds %llu",
      static_cast<unsigned long long>(stats.index_rebuilds)));
  items.push_back(StrFormat(
      "write_edits %llu",
      static_cast<unsigned long long>(stats.writes.edits)));
  items.push_back(StrFormat(
      "write_batches %llu",
      static_cast<unsigned long long>(stats.writes.batches)));
  items.push_back(StrFormat(
      "write_retries %llu",
      static_cast<unsigned long long>(stats.writes.retries)));
  items.push_back(StrFormat("cache_hits %llu",
                            static_cast<unsigned long long>(stats.cache.hits)));
  items.push_back(
      StrFormat("cache_misses %llu",
                static_cast<unsigned long long>(stats.cache.misses)));
  items.push_back(StrFormat("cache_size %zu", stats.cache.size));
  items.push_back(StrFormat("cache_hit_rate %.4f", stats.cache.hit_rate()));
  items.push_back(
      StrFormat("server_connections %llu",
                static_cast<unsigned long long>(
                    connections_accepted_->Value())));
  items.push_back(StrFormat(
      "server_frames %llu",
      static_cast<unsigned long long>(frames_received_->Value())));
  items.push_back(StrFormat(
      "server_responses %llu",
      static_cast<unsigned long long>(responses_sent_->Value())));
  items.push_back(StrFormat(
      "server_protocol_errors %llu",
      static_cast<unsigned long long>(protocol_errors_->Value())));
  items.push_back(StrFormat(
      "server_request_errors %llu",
      static_cast<unsigned long long>(request_errors_->Value())));
  items.push_back(StrFormat(
      "server_idle_disconnects %llu",
      static_cast<unsigned long long>(idle_disconnects_->Value())));
  items.push_back(StrFormat(
      "server_sheds %llu",
      static_cast<unsigned long long>(shed_total_->Value())));
  return RenderItems(items, 0, false);
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted = connections_accepted_->Value();
  stats.frames_received = frames_received_->Value();
  stats.responses_sent = responses_sent_->Value();
  stats.protocol_errors = protocol_errors_->Value();
  stats.request_errors = request_errors_->Value();
  stats.idle_disconnects = idle_disconnects_->Value();
  stats.sheds = shed_total_->Value();
  return stats;
}

}  // namespace cxml::net
