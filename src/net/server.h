#ifndef CXML_NET_SERVER_H_
#define CXML_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "fault/injector.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/document_store.h"
#include "service/query_service.h"
#include "service/thread_pool.h"

namespace cxml::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start.
  uint16_t port = 0;
  /// Workers handling decoded requests (QUERY additionally rides the
  /// QueryService's own pool; these threads mostly block on it).
  size_t num_workers = 4;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// When false, REGISTER/IMPORT/REMOVE answer ERR Unimplemented — a
  /// read-mostly edge exposed to untrusted clients should not accept
  /// document uploads.
  bool allow_register = true;
  /// Cap on an IMPORT frame's markup body. Parsing external markup is
  /// CPU-bound on a worker thread, so the cap bounds the work one
  /// frame can demand (the frame decoder's max_frame_bytes already
  /// bounds the bytes). Oversized imports earn ERR InvalidArgument.
  size_t max_import_bytes = 8 * 1024 * 1024;
  /// Per-collection cap on QCOLL result items summed across the
  /// matched documents; a collection answering more is cut off in
  /// (document, rank) order and flagged truncated (hit slot = 0).
  size_t max_collection_results = 4096;
  /// Cap on live QPREPARE handles per connection — a remote peer must
  /// not grow server memory without bound by preparing forever (the
  /// compiled objects are deduplicated service-wide, but the qid table
  /// itself is per-connection). Exceeding it earns ERR
  /// FailedPrecondition; 0 disables QPREPARE entirely.
  size_t max_prepared_per_conn = 1024;
  /// Per-connection read/idle deadline: a connection on which no bytes
  /// arrive, no response bytes drain, and no request is in flight for
  /// this long is closed (its open EBEGIN transaction aborts with it),
  /// so half-open peers and idle keepalives cannot pin fds forever —
  /// while a client waiting on a slow query is never reaped
  /// mid-request. 0 disables the deadline.
  int idle_timeout_ms = 0;
  /// Requests slower than this (end-to-end µs, measured from frame
  /// decode to response render) emit one structured slow-query log
  /// line with per-stage micros; 0 disables. Forwarded to the
  /// service's Tracer at Start().
  uint64_t slow_query_us = 0;
  /// When true, every mutating verb (EDIT, EBEGIN/EOP/ECOMMIT/EABORT,
  /// REGISTER, IMPORT, REMOVE) answers ERR FailedPrecondition. A replication
  /// follower serves reads this way so local writers cannot fork the
  /// replica's history away from the primary's.
  bool read_only = false;
  /// The durability log backing the SYNC verb, or nullptr — without
  /// one, SYNC answers ERR Unimplemented. Not owned; must outlive the
  /// server. Typically the primary's wal::WalManager.
  SyncSource* sync_source = nullptr;
  /// Load-shedding bounds on decoded-but-unserved requests. When a
  /// connection's own queue reaches max_queued_per_conn, or the
  /// server-wide total reaches max_queued_global, the new request is
  /// answered — in pipeline order, without being executed — with
  /// `ERR Unavailable ... retry_after_ms=<shed_retry_after_ms>`, so
  /// overload costs bounded memory and bounded queueing delay instead
  /// of unbounded latency. Idempotent clients honour the hint and
  /// retry (net::Client does); writers surface the error.
  size_t max_queued_per_conn = 64;
  size_t max_queued_global = 1024;
  /// The retry hint carried inside a shed response's message.
  int shed_retry_after_ms = 50;
  /// Failover hook: PROMOTE runs this on a worker thread (null on a
  /// born-primary, which answers ERR FailedPrecondition). On Ok the
  /// server flips read-only off and answers with the returned version
  /// frontier. Must tolerate being called more than once.
  std::function<Result<uint64_t>()> promote_handler;
  /// The FAULT admin verb's target, and the injector consulted by the
  /// server's own fault points (net.accept / net.read_drop /
  /// net.write_stall_ms). nullptr leaves every hook a dead branch and
  /// makes FAULT answer ERR Unimplemented. Not owned; must outlive
  /// the server.
  fault::Injector* injector = nullptr;
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_received = 0;
  uint64_t responses_sent = 0;
  /// Framing violations; each costs its connection.
  uint64_t protocol_errors = 0;
  /// Well-framed requests answered with an ERR payload.
  uint64_t request_errors = 0;
  /// Connections closed by the read/idle deadline.
  uint64_t idle_disconnects = 0;
  /// Requests answered ERR Unavailable without executing — refused
  /// admission under overload, or rejected unstarted during drain.
  uint64_t sheds = 0;
};

/// The CXP/1 network front-end: one poll(2) loop owns every socket
/// (accept, read, write — all non-blocking), a ThreadPool executes
/// decoded requests against DocumentStore/QueryService, and a self-
/// pipe lets workers hand finished responses back to the poll loop.
///
/// Per connection the receive side is a FrameDecoder state machine;
/// decoded payloads queue per connection and at most one worker
/// serves a connection at a time (claiming its whole backlog, like
/// QueryService's per-document batching), so pipelined requests are
/// answered strictly in order while separate connections proceed in
/// parallel. The connection also carries protocol state across
/// frames: an EBEGIN'd EditTransaction lives on it until ECOMMIT /
/// EABORT / disconnect, which is what lets a remote editor observe an
/// optimistic conflict with a commit that landed in between. The
/// QPREPARE handle table (qid → service::QueryHandle) lives on the
/// connection the same way — bounded by
/// ServerOptions::max_prepared_per_conn, dropped on disconnect — so
/// QRUN frames execute compiled queries without ever re-sending or
/// re-parsing expression bytes (the handles themselves are immutable
/// and deduplicated service-wide, so concurrent QRUNs from many
/// connections share one compiled object).
///
/// Writes route through the service's per-document WritePipeline:
/// single-frame EDITs join the document's group commit (one clone +
/// one publish + one cache invalidation per batch), and ECOMMIT
/// queues the connection's cross-frame transaction behind the
/// document's pending writes — FIFO per document, with stale bases
/// still losing deterministically as ERR FailedPrecondition.
///
/// Workers never touch sockets: they append rendered frames
/// to the connection's outbox and wake the poll loop, which flushes
/// under POLLOUT. A malformed frame gets one ERR frame and a close —
/// framing is unrecoverable once the length prefix is untrustworthy.
/// An optional read/idle deadline (ServerOptions::idle_timeout_ms)
/// closes connections that neither deliver bytes nor drain responses.
class Server {
 public:
  Server(service::DocumentStore* store, service::QueryService* service,
         ServerOptions options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the poll thread + workers.
  Status Start();
  /// Graceful drain, then teardown. The listener stops accepting and
  /// reads stop, but the poll thread keeps flushing while workers
  /// finish the requests they already started — so an in-flight
  /// commit's ack still reaches its client — and answer every
  /// queued-unstarted request ERR Unavailable. Only then do sockets
  /// close and threads join. Idempotent; wired to SIGTERM in
  /// cxml_serverd.
  void Stop();

  bool running() const { return running_.load(); }
  /// The bound port (after Start); useful with options.port == 0.
  uint16_t port() const { return port_; }
  ServerStats stats() const;

 private:
  struct Conn;

  void PollLoop();
  /// Poll-thread helpers. AcceptNew returns false when accept() failed
  /// hard (fd exhaustion) and the poll loop should back off briefly.
  bool AcceptNew();
  /// Closes connections whose read/idle deadline expired; returns the
  /// poll timeout (ms) until the next deadline, or -1 when the
  /// deadline is disabled or no connection is open.
  int SweepIdle();
  void ReadFrom(const std::shared_ptr<Conn>& conn);
  void FlushTo(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  /// Worker entry: drains `conn`'s request queue, one frame at a time.
  void ServeConnection(std::shared_ptr<Conn> conn);
  /// Wakes the poll loop (self-pipe write; callable from any thread).
  void Wake();

  /// Request execution (worker threads; `conn` carries the open
  /// edit transaction, touched only by the connection's one worker).
  /// `trace` (possibly null) is this request's trace: HandleRequest
  /// adds the decode stage and the label, the query paths hang
  /// service/respond stages under it.
  std::string HandleRequest(Conn* conn, std::string_view payload,
                            const obs::TracePtr& trace);
  Result<std::string> Dispatch(Conn* conn, const Request& request,
                               const obs::TracePtr& trace);
  Result<std::string> DoQuery(const Request& request,
                              const obs::TracePtr& trace);
  Result<std::string> DoQueryPrepare(Conn* conn, const Request& request);
  Result<std::string> DoQueryRun(Conn* conn, const Request& request,
                                 const obs::TracePtr& trace);
  /// Shared QUERY/QRUN tail: service + respond trace stages around the
  /// prepared-handle execution.
  Result<std::string> RunPrepared(const std::string& document,
                                  const service::QueryHandle& handle,
                                  const obs::TracePtr& trace);
  Result<std::string> DoImport(const Request& request);
  Result<std::string> DoCollectionQuery(Conn* conn, const Request& request,
                                        const obs::TracePtr& trace);
  Result<std::string> DoEdit(const Request& request);
  Result<std::string> DoEditBegin(Conn* conn, const Request& request);
  Result<std::string> DoEditOp(Conn* conn, const Request& request);
  Result<std::string> DoEditCommit(Conn* conn);
  Result<std::string> DoEditAbort(Conn* conn);
  Result<std::string> DoStat();
  Result<std::string> DoMetrics();
  Result<std::string> DoTrace(const Request& request);
  Result<std::string> DoSync(const Request& request);
  Result<std::string> DoPromote();
  Result<std::string> DoFault(const Request& request);

  service::DocumentStore* store_;
  service::QueryService* service_;
  ServerOptions options_;

  Fd listener_;
  Fd wake_read_;
  Fd wake_write_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Set first during Stop(): no new accepts or reads, but the poll
  /// thread keeps flushing until in-flight work has answered.
  std::atomic<bool> draining_{false};
  /// Mutable mirror of options_.read_only — PROMOTE flips it off at
  /// runtime, which is what turns a follower into a writable primary.
  std::atomic<bool> read_only_{false};
  /// Decoded requests admitted but not yet served, across all
  /// connections (shed markers excluded) — the global shed bound.
  std::atomic<size_t> queued_total_{0};
  std::thread poll_thread_;

  mutable std::mutex mu_;
  std::map<int, std::shared_ptr<Conn>> conns_;

  /// Front-end tallies on the service's registry (fetched once in the
  /// constructor), so METRICS exposes them next to the service's own
  /// and stats()/STAT read the same numbers.
  obs::Counter* connections_accepted_ = nullptr;
  obs::Counter* frames_received_ = nullptr;
  obs::Counter* responses_sent_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Counter* request_errors_ = nullptr;
  obs::Counter* idle_disconnects_ = nullptr;
  obs::Counter* shed_total_ = nullptr;
  /// Ingestion tallies: IMPORT frames that registered a document vs
  /// rejected their markup, and the parse-to-GODDAG latency.
  obs::Counter* imports_total_ = nullptr;
  obs::Counter* import_errors_ = nullptr;
  obs::Histogram* import_us_ = nullptr;
  /// Currently open connections (accepted − closed).
  obs::Gauge* open_conns_ = nullptr;
  /// End-to-end request latency as the worker sees it: decode →
  /// response rendered (socket write time excluded).
  obs::Histogram* request_us_ = nullptr;

  /// Declared last so workers stop before the state above dies.
  std::unique_ptr<service::ThreadPool> workers_;
};

}  // namespace cxml::net

#endif  // CXML_NET_SERVER_H_
