#include "net/socket.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/strings.h"

namespace cxml::net {

namespace {

Status ErrnoStatus(const char* what) {
  return status::Internal(StrCat(what, ": ", strerror(errno)));
}

/// getaddrinfo over TCP; `passive` requests a bindable address.
Result<Fd> OpenTcp(const std::string& host, uint16_t port, bool passive) {
  struct addrinfo hints;
  memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  std::string service = StrFormat("%u", port);
  struct addrinfo* infos = nullptr;
  int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                       service.c_str(), &hints, &infos);
  if (rc != 0) {
    return status::InvalidArgument(
        StrCat("cannot resolve '", host, "': ", gai_strerror(rc)));
  }
  Status last = status::Internal(StrCat("no usable address for '", host, "'"));
  for (struct addrinfo* info = infos; info != nullptr; info = info->ai_next) {
    Fd fd(socket(info->ai_family, info->ai_socktype, info->ai_protocol));
    if (!fd.valid()) {
      last = ErrnoStatus("socket");
      continue;
    }
    if (passive) {
      int one = 1;
      setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (bind(fd.get(), info->ai_addr, info->ai_addrlen) != 0) {
        last = ErrnoStatus("bind");
        continue;
      }
    } else {
      if (connect(fd.get(), info->ai_addr, info->ai_addrlen) != 0) {
        last = ErrnoStatus("connect");
        continue;
      }
    }
    freeaddrinfo(infos);
    return fd;
  }
  freeaddrinfo(infos);
  return last;
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> ListenTcp(const std::string& address, uint16_t port,
                     int backlog) {
  CXML_ASSIGN_OR_RETURN(Fd fd, OpenTcp(address, port, /*passive=*/true));
  if (listen(fd.get(), backlog) != 0) return ErrnoStatus("listen");
  return fd;
}

Result<Fd> ConnectTcp(const std::string& host, uint16_t port) {
  CXML_ASSIGN_OR_RETURN(Fd fd, OpenTcp(host, port, /*passive=*/false));
  CXML_RETURN_IF_ERROR(SetNoDelay(fd));
  return fd;
}

Result<uint16_t> LocalPort(const Fd& fd) {
  struct sockaddr_storage addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                  &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
  }
  return status::Internal("unknown socket address family");
}

Status SetNonBlocking(const Fd& fd) {
  int flags = fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

Status SetNoDelay(const Fd& fd) {
  int one = 1;
  if (setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) !=
      0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

Status SetRecvTimeout(const Fd& fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

Status SetSendTimeout(const Fd& fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_SNDTIMEO)");
  }
  return Status::Ok();
}

Status SendAll(const Fd& fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = send(fd.get(), bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return status::DeadlineExceeded("send timed out");
      }
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<size_t> RecvSome(const Fd& fd, char* buffer, size_t capacity) {
  for (;;) {
    ssize_t n = recv(fd.get(), buffer, capacity, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return status::DeadlineExceeded("recv timed out");
      }
      return ErrnoStatus("recv");
    }
    return static_cast<size_t>(n);
  }
}

}  // namespace cxml::net
