#ifndef CXML_NET_FRAME_H_
#define CXML_NET_FRAME_H_

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>

#include "common/result.h"

namespace cxml::net {

/// CXP/1 framing — the transport unit under the protocol in
/// protocol.h. Every message (request or response) travels as one
/// frame:
///
///   frame  := "CXP1 " length "\n" payload
///   length := decimal ASCII byte count of `payload`
///
/// The header is pure text; the payload is arbitrary bytes (command
/// text, query expressions, or raw CXG1 snapshot bytes for REGISTER),
/// so framing never needs escaping. A peer that sends anything else —
/// wrong magic, non-numeric or oversize length, an endless header —
/// is malformed and the connection is dropped after one ERR frame.
inline constexpr std::string_view kFrameMagic = "CXP1 ";

/// Ceiling on a single payload; large enough for snapshot uploads,
/// small enough that a hostile length can't balloon the read buffer.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// A header is "CXP1 " + decimal length + "\n"; anything longer than
/// this without a newline is garbage, not a slow sender.
inline constexpr size_t kMaxHeaderBytes = 32;

/// Wraps `payload` in a CXP/1 frame.
std::string EncodeFrame(std::string_view payload);
void AppendFrame(std::string* out, std::string_view payload);

/// Bounded decimal parse shared by the frame header and the protocol
/// grammar: false on empty input, a non-digit, or > 19 digits (every
/// accepted value fits uint64_t without overflow).
bool ParseDecimalU64(std::string_view digits, uint64_t* out);

/// Incremental frame parser — the per-connection receive state
/// machine. Feed raw socket bytes in any fragmentation; pop complete
/// payloads with `Next`. A framing violation is sticky: `Feed` keeps
/// returning the same error and the connection must be torn down
/// (frame boundaries are unrecoverable once the length prefix is
/// untrustworthy). Payloads already completed before the error are
/// still retrievable.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Consumes `bytes`, queuing every payload completed by them.
  Status Feed(std::string_view bytes);

  /// Pops the oldest complete payload into `*payload`; false when none
  /// is pending.
  bool Next(std::string* payload);

  bool HasFrame() const { return !ready_.empty(); }
  /// Bytes of the partially received frame (header or payload).
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  enum class State { kHeader, kPayload, kError };

  size_t max_frame_bytes_;
  State state_ = State::kHeader;
  Status error_;
  std::string buffer_;
  size_t payload_length_ = 0;
  std::deque<std::string> ready_;
};

}  // namespace cxml::net

#endif  // CXML_NET_FRAME_H_
