#include "net/protocol.h"

#include <utility>

#include "common/strings.h"
#include "net/frame.h"

namespace cxml::net {

namespace {

/// Splits `s` on single spaces; unlike common Split, adjacent
/// delimiters are an error surface here, so empty tokens are kept and
/// rejected by the per-verb arity checks.
std::vector<std::string_view> Tokens(std::string_view s) {
  return Split(s, ' ');
}

bool ParseU64(std::string_view digits, uint64_t* out) {
  return ParseDecimalU64(digits, out);
}

Status Malformed(std::string_view what, std::string_view line) {
  return status::ParseError(
      StrCat("malformed ", what, ": '", line, "'"));
}

Status ValidateToken(std::string_view token, const char* what) {
  if (token.empty()) {
    return status::InvalidArgument(StrCat(what, " must not be empty"));
  }
  if (token.size() > 256) {
    return status::InvalidArgument(StrCat(what, " exceeds 256 bytes"));
  }
  for (char c : token) {
    if (static_cast<unsigned char>(c) <= ' ' || c == 0x7f) {
      return status::InvalidArgument(StrCat(
          what, " '", token, "' contains whitespace or control bytes"));
    }
  }
  return Status::Ok();
}

StatusCode StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kParseError,   StatusCode::kValidationError,
      StatusCode::kUnimplemented, StatusCode::kInternal,
      StatusCode::kUnavailable,  StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kCodes) {
    if (StatusCodeToString(code) == name) return code;
  }
  // An unknown code from a newer peer still surfaces as an error.
  return StatusCode::kInternal;
}

/// Everything before the first '\n' (or all of `payload`); `*body`
/// gets the rest.
std::string_view CommandLine(std::string_view payload,
                             std::string_view* body) {
  size_t newline = payload.find('\n');
  if (newline == std::string_view::npos) {
    *body = std::string_view();
    return payload;
  }
  *body = payload.substr(newline + 1);
  return payload.substr(0, newline);
}

void AppendOpLines(std::string* out, const std::vector<EditOp>& ops) {
  for (const EditOp& op : ops) {
    if (op.kind == EditOp::Kind::kSelect) {
      *out += StrFormat("SELECT %zu %zu\n", op.chars.begin, op.chars.end);
    } else {
      *out += StrFormat("APPLY %u ", op.hierarchy);
      *out += op.tag;
      out->push_back('\n');
    }
  }
}

/// Parses SELECT/APPLY (and, when `commit` is non-null, COMMIT) lines
/// into `*ops`. A null `commit` (EOP body) rejects COMMIT lines.
Status ParseOpLines(std::string_view body, std::vector<EditOp>* ops,
                    bool* commit) {
  while (!body.empty()) {
    std::string_view rest;
    std::string_view op_line = CommandLine(body, &rest);
    body = rest;
    if (commit != nullptr && *commit && !op_line.empty()) {
      return Malformed("EDIT op after COMMIT", op_line);
    }
    if (op_line.empty()) continue;  // tolerate a trailing newline
    std::vector<std::string_view> op = Tokens(op_line);
    if (op[0] == "COMMIT") {
      if (commit == nullptr) {
        return Malformed("COMMIT inside an EOP frame (use ECOMMIT)",
                         op_line);
      }
      if (op.size() != 1) return Malformed("COMMIT line", op_line);
      *commit = true;
    } else if (op[0] == "SELECT") {
      uint64_t begin = 0;
      uint64_t end = 0;
      if (op.size() != 3 || !ParseU64(op[1], &begin) ||
          !ParseU64(op[2], &end)) {
        return Malformed("SELECT line", op_line);
      }
      ops->push_back(EditOp::Select(begin, end));
    } else if (op[0] == "APPLY") {
      uint64_t hierarchy = 0;
      if (op.size() != 3 || !ParseU64(op[1], &hierarchy)) {
        return Malformed("APPLY line", op_line);
      }
      CXML_RETURN_IF_ERROR(ValidateToken(op[2], "APPLY tag"));
      ops->push_back(EditOp::Apply(static_cast<cmh::HierarchyId>(hierarchy),
                                   std::string(op[2])));
    } else {
      return Malformed("edit op", op_line);
    }
  }
  return Status::Ok();
}

}  // namespace

const char* VerbToString(Verb verb) {
  switch (verb) {
    case Verb::kQuery:
      return "QUERY";
    case Verb::kQueryPrepare:
      return "QPREPARE";
    case Verb::kQueryRun:
      return "QRUN";
    case Verb::kEdit:
      return "EDIT";
    case Verb::kEditBegin:
      return "EBEGIN";
    case Verb::kEditOp:
      return "EOP";
    case Verb::kEditCommit:
      return "ECOMMIT";
    case Verb::kEditAbort:
      return "EABORT";
    case Verb::kRegister:
      return "REGISTER";
    case Verb::kImport:
      return "IMPORT";
    case Verb::kRemove:
      return "REMOVE";
    case Verb::kCollectionQuery:
      return "QCOLL";
    case Verb::kList:
      return "LIST";
    case Verb::kStat:
      return "STAT";
    case Verb::kMetrics:
      return "METRICS";
    case Verb::kTrace:
      return "TRACE";
    case Verb::kPing:
      return "PING";
    case Verb::kSync:
      return "SYNC";
    case Verb::kPromote:
      return "PROMOTE";
    case Verb::kFault:
      return "FAULT";
  }
  return "PING";
}

Status ValidateDocumentName(std::string_view name) {
  return ValidateToken(name, "document name");
}

Status ValidateCollectionPattern(std::string_view pattern) {
  return ValidateToken(pattern, "collection pattern");
}

Status ValidateEditOps(const std::vector<EditOp>& ops) {
  for (const EditOp& op : ops) {
    if (op.kind == EditOp::Kind::kApply) {
      CXML_RETURN_IF_ERROR(ValidateToken(op.tag, "APPLY tag"));
    }
  }
  return Status::Ok();
}

std::string RenderRequest(const Request& request) {
  switch (request.verb) {
    case Verb::kQuery:
      return StrCat("QUERY ", request.document, " ",
                    request.kind == service::QueryKind::kXQuery ? "XQUERY"
                                                                : "XPATH",
                    "\n", request.body);
    case Verb::kQueryPrepare:
      return StrCat("QPREPARE ",
                    request.kind == service::QueryKind::kXQuery ? "XQUERY"
                                                                : "XPATH",
                    "\n", request.body);
    case Verb::kQueryRun:
      return StrCat("QRUN ", request.document, " ",
                    StrFormat("%llu",
                              static_cast<unsigned long long>(request.qid)));
    case Verb::kRegister:
      return StrCat("REGISTER ", request.document, "\n", request.body);
    case Verb::kImport:
      return StrCat("IMPORT ", request.document, " ", request.format, "\n",
                    request.body);
    case Verb::kRemove:
      return StrCat("REMOVE ", request.document);
    case Verb::kCollectionQuery:
      return StrCat("QCOLL ", request.pattern, " ",
                    StrFormat("%llu",
                              static_cast<unsigned long long>(request.qid)));
    case Verb::kList:
      return "LIST";
    case Verb::kStat:
      return "STAT";
    case Verb::kMetrics:
      return "METRICS";
    case Verb::kTrace:
      return StrFormat("TRACE %llu",
                       static_cast<unsigned long long>(request.count));
    case Verb::kSync:
      return StrCat(
          "SYNC ", request.document, " ",
          StrFormat("%llu",
                    static_cast<unsigned long long>(request.from_version)));
    case Verb::kPing:
      return "PING";
    case Verb::kPromote:
      return "PROMOTE";
    case Verb::kFault: {
      std::string out = StrCat("FAULT ", request.fault_action);
      if (!request.fault_point.empty()) {
        out += StrCat(" ", request.fault_point);
      }
      if (!request.fault_spec.empty()) {
        out += StrCat(" ", request.fault_spec);
      }
      return out;
    }
    case Verb::kEditBegin:
      return StrCat("EBEGIN ", request.document);
    case Verb::kEditCommit:
      return "ECOMMIT";
    case Verb::kEditAbort:
      return "EABORT";
    case Verb::kEdit: {
      std::string out = StrCat("EDIT ", request.document, "\n");
      AppendOpLines(&out, request.ops);
      out += "COMMIT";
      return out;
    }
    case Verb::kEditOp: {
      std::string out = "EOP\n";
      AppendOpLines(&out, request.ops);
      // Drop the final '\n' so an empty-tolerant parser sees no blank.
      if (!request.ops.empty()) out.pop_back();
      return out;
    }
  }
  return "PING";
}

Result<Request> ParseRequest(std::string_view payload) {
  std::string_view body;
  std::string_view line = CommandLine(payload, &body);
  std::vector<std::string_view> tokens = Tokens(line);
  if (tokens.empty() || tokens[0].empty()) {
    return Malformed("command line", line);
  }
  std::string_view verb = tokens[0];
  Request request;

  if (verb == "PING" || verb == "LIST" || verb == "STAT" ||
      verb == "METRICS" || verb == "ECOMMIT" || verb == "EABORT" ||
      verb == "PROMOTE") {
    if (tokens.size() != 1) return Malformed("command line", line);
    request.verb = verb == "PING"      ? Verb::kPing
                   : verb == "LIST"    ? Verb::kList
                   : verb == "STAT"    ? Verb::kStat
                   : verb == "METRICS" ? Verb::kMetrics
                   : verb == "ECOMMIT" ? Verb::kEditCommit
                   : verb == "PROMOTE" ? Verb::kPromote
                                       : Verb::kEditAbort;
    return request;
  }
  if (verb == "FAULT") {
    request.verb = Verb::kFault;
    if (tokens.size() < 2) return Malformed("FAULT command line", line);
    request.fault_action = std::string(tokens[1]);
    if (request.fault_action == "LIST" || request.fault_action == "CLEAR") {
      if (tokens.size() != 2) return Malformed("FAULT command line", line);
      return request;
    }
    if (request.fault_action == "SEED") {
      uint64_t seed = 0;
      if (tokens.size() != 3 || !ParseU64(tokens[2], &seed)) {
        return Malformed("FAULT SEED line", line);
      }
      request.fault_spec = std::string(tokens[2]);
      return request;
    }
    if (request.fault_action == "DISARM") {
      if (tokens.size() != 3) return Malformed("FAULT DISARM line", line);
      CXML_RETURN_IF_ERROR(ValidateToken(tokens[2], "fault point"));
      request.fault_point = std::string(tokens[2]);
      return request;
    }
    if (request.fault_action == "ARM") {
      if (tokens.size() != 4) return Malformed("FAULT ARM line", line);
      CXML_RETURN_IF_ERROR(ValidateToken(tokens[2], "fault point"));
      CXML_RETURN_IF_ERROR(ValidateToken(tokens[3], "fault spec"));
      request.fault_point = std::string(tokens[2]);
      request.fault_spec = std::string(tokens[3]);
      return request;
    }
    return Malformed("FAULT action", tokens[1]);
  }
  if (verb == "TRACE") {
    if (tokens.size() != 2) return Malformed("TRACE command line", line);
    request.verb = Verb::kTrace;
    if (!ParseU64(tokens[1], &request.count) || request.count == 0) {
      return Malformed("TRACE count", tokens[1]);
    }
    return request;
  }
  if (verb == "REMOVE" || verb == "REGISTER" || verb == "EBEGIN") {
    if (tokens.size() != 2) return Malformed("command line", line);
    request.verb = verb == "REMOVE"   ? Verb::kRemove
                   : verb == "EBEGIN" ? Verb::kEditBegin
                                      : Verb::kRegister;
    request.document = std::string(tokens[1]);
    CXML_RETURN_IF_ERROR(ValidateDocumentName(request.document));
    if (request.verb == Verb::kRegister) {
      request.body = std::string(body);
    }
    return request;
  }
  if (verb == "EOP") {
    if (tokens.size() != 1) return Malformed("EOP command line", line);
    request.verb = Verb::kEditOp;
    CXML_RETURN_IF_ERROR(ParseOpLines(body, &request.ops,
                                      /*commit=*/nullptr));
    if (request.ops.empty()) {
      return status::ParseError("EOP carries no operations");
    }
    return request;
  }
  if (verb == "QPREPARE") {
    if (tokens.size() != 2) return Malformed("QPREPARE command line", line);
    request.verb = Verb::kQueryPrepare;
    if (tokens[1] == "XPATH") {
      request.kind = service::QueryKind::kXPath;
    } else if (tokens[1] == "XQUERY") {
      request.kind = service::QueryKind::kXQuery;
    } else {
      return Malformed("QPREPARE kind", tokens[1]);
    }
    if (body.empty()) {
      return status::ParseError("QPREPARE carries no expression body");
    }
    request.body = std::string(body);
    return request;
  }
  if (verb == "SYNC") {
    if (tokens.size() != 3) return Malformed("SYNC command line", line);
    request.verb = Verb::kSync;
    request.document = std::string(tokens[1]);
    CXML_RETURN_IF_ERROR(ValidateDocumentName(request.document));
    if (!ParseU64(tokens[2], &request.from_version)) {
      return Malformed("SYNC from_version", tokens[2]);
    }
    return request;
  }
  if (verb == "IMPORT") {
    if (tokens.size() != 3) return Malformed("IMPORT command line", line);
    request.verb = Verb::kImport;
    request.document = std::string(tokens[1]);
    CXML_RETURN_IF_ERROR(ValidateDocumentName(request.document));
    CXML_RETURN_IF_ERROR(ValidateToken(tokens[2], "IMPORT format"));
    request.format = std::string(tokens[2]);
    if (body.empty()) {
      return status::ParseError("IMPORT carries no markup body");
    }
    request.body = std::string(body);
    return request;
  }
  if (verb == "QCOLL") {
    if (tokens.size() != 3) return Malformed("QCOLL command line", line);
    request.verb = Verb::kCollectionQuery;
    request.pattern = std::string(tokens[1]);
    CXML_RETURN_IF_ERROR(ValidateCollectionPattern(request.pattern));
    if (!ParseU64(tokens[2], &request.qid)) {
      return Malformed("QCOLL id", tokens[2]);
    }
    return request;
  }
  if (verb == "QRUN") {
    if (tokens.size() != 3) return Malformed("QRUN command line", line);
    request.verb = Verb::kQueryRun;
    request.document = std::string(tokens[1]);
    CXML_RETURN_IF_ERROR(ValidateDocumentName(request.document));
    if (!ParseU64(tokens[2], &request.qid)) {
      return Malformed("QRUN id", tokens[2]);
    }
    return request;
  }
  if (verb == "QUERY") {
    if (tokens.size() != 3) return Malformed("QUERY command line", line);
    request.verb = Verb::kQuery;
    request.document = std::string(tokens[1]);
    CXML_RETURN_IF_ERROR(ValidateDocumentName(request.document));
    if (tokens[2] == "XPATH") {
      request.kind = service::QueryKind::kXPath;
    } else if (tokens[2] == "XQUERY") {
      request.kind = service::QueryKind::kXQuery;
    } else {
      return Malformed("QUERY kind", tokens[2]);
    }
    if (body.empty()) {
      return status::ParseError("QUERY carries no expression body");
    }
    request.body = std::string(body);
    return request;
  }
  if (verb == "EDIT") {
    if (tokens.size() != 2) return Malformed("EDIT command line", line);
    request.verb = Verb::kEdit;
    request.document = std::string(tokens[1]);
    CXML_RETURN_IF_ERROR(ValidateDocumentName(request.document));
    bool committed = false;
    CXML_RETURN_IF_ERROR(ParseOpLines(body, &request.ops, &committed));
    if (!committed) {
      return status::ParseError("EDIT body must end with a COMMIT line");
    }
    if (request.ops.empty()) {
      return status::ParseError("EDIT commits no operations");
    }
    return request;
  }
  return Malformed("CXP/1 verb", verb);
}

std::string RenderOps(const std::vector<EditOp>& ops) {
  std::string out;
  AppendOpLines(&out, ops);
  return out;
}

Result<std::vector<EditOp>> ParseOps(std::string_view body) {
  std::vector<EditOp> ops;
  CXML_RETURN_IF_ERROR(ParseOpLines(body, &ops, /*commit=*/nullptr));
  return ops;
}

std::string RenderItems(const std::vector<std::string>& items,
                        uint64_t version, bool cache_hit) {
  size_t total = 32;
  for (const std::string& item : items) total += item.size() + 24;
  std::string out;
  out.reserve(total);
  out += StrFormat("OK %zu %llu %d\n", items.size(),
                   static_cast<unsigned long long>(version),
                   cache_hit ? 1 : 0);
  for (const std::string& item : items) {
    out += StrFormat("%zu ", item.size());
    out += item;
    out.push_back('\n');
  }
  return out;
}

std::string RenderVersion(uint64_t version) {
  return StrFormat("OK 0 %llu 0\n",
                   static_cast<unsigned long long>(version));
}

std::string RenderOk() { return "OK 0 0 0\n"; }

std::string RenderError(const Status& status) {
  std::string message = status.ok() ? std::string("unspecified")
                                    : status.message();
  // The ERR line is the whole payload: newlines inside the message
  // would read as garbage items on a naive peer.
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return StrCat("ERR ", StatusCodeToString(status.ok()
                                               ? StatusCode::kInternal
                                               : status.code()),
                " ", message);
}

Result<Response> ParseResponse(std::string_view payload) {
  std::string_view body;
  std::string_view line = CommandLine(payload, &body);
  if (StartsWith(line, "ERR ")) {
    std::string_view rest = line.substr(4);
    size_t space = rest.find(' ');
    std::string_view code = space == std::string_view::npos
                                ? rest
                                : rest.substr(0, space);
    std::string_view message = space == std::string_view::npos
                                   ? std::string_view()
                                   : rest.substr(space + 1);
    Response response;
    response.status = Status(StatusCodeFromString(code),
                             std::string(message));
    if (response.status.ok()) {
      return Malformed("ERR response", line);
    }
    return response;
  }
  std::vector<std::string_view> tokens = Tokens(line);
  uint64_t count = 0;
  uint64_t version = 0;
  uint64_t hit = 0;
  if (tokens.size() != 4 || tokens[0] != "OK" ||
      !ParseU64(tokens[1], &count) || !ParseU64(tokens[2], &version) ||
      !ParseU64(tokens[3], &hit) || hit > 1) {
    return Malformed("response status line", line);
  }
  Response response;
  response.version = version;
  response.cache_hit = hit == 1;
  // Every item costs at least "0 \n" = 3 body bytes, so a count beyond
  // the body size is a lie — reject it before reserve() turns a
  // hostile status line into a giant allocation.
  if (count > body.size()) {
    return Malformed("response item count", line);
  }
  response.items.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    size_t space = body.find(' ');
    uint64_t length = 0;
    if (space == std::string_view::npos ||
        !ParseU64(body.substr(0, space), &length)) {
      return Malformed("response item header", body.substr(0, 32));
    }
    body.remove_prefix(space + 1);
    if (body.size() < length + 1 || body[length] != '\n') {
      return status::ParseError(
          StrFormat("response item %llu truncated",
                    static_cast<unsigned long long>(i)));
    }
    response.items.emplace_back(body.substr(0, length));
    body.remove_prefix(length + 1);
  }
  if (!body.empty()) {
    return status::ParseError("trailing bytes after the last response item");
  }
  return response;
}

}  // namespace cxml::net
