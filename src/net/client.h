#ifndef CXML_NET_CLIENT_H_
#define CXML_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "service/query_cache.h"

namespace cxml::net {

/// Blocking CXP/1 client: one TCP connection, one outstanding request
/// at a time (Call writes a frame, then reads until the matching
/// response frame). Not thread-safe — give each thread its own Client,
/// as the load generator does. Any transport or framing failure is
/// terminal for the connection; reconnect with Connect.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_.valid(); }

  /// Low-level round trip. The Result is transport-level; an ERR frame
  /// from the server arrives as an ok() Result whose Response carries
  /// the non-OK Status.
  Result<Response> Call(const Request& request);

  /// Convenience wrappers folding the two error layers into one.
  Result<Response> Query(const std::string& document,
                         const std::string& expression,
                         service::QueryKind kind);
  /// Compiles an expression server-side (QPREPARE) and returns its
  /// prepared-query id. The id is bound to this connection and dies
  /// with it; Run executes it against any document without re-sending
  /// the expression bytes.
  Result<uint64_t> Prepare(service::QueryKind kind,
                           const std::string& expression);
  /// Executes a prepared query (QRUN) — a QUERY-shaped response.
  /// Unknown ids come back as the server's ERR NotFound.
  Result<Response> Run(const std::string& document, uint64_t qid);
  /// Uploads CXG1 snapshot bytes; returns the registered version (1).
  Result<uint64_t> Register(const std::string& document,
                            std::string snapshot_bytes);
  Status Remove(const std::string& document);
  /// Applies `ops` in one server-side transaction and commits; returns
  /// the published version. A conflicting commit returns the server's
  /// FailedPrecondition.
  Result<uint64_t> Edit(const std::string& document,
                        std::vector<EditOp> ops);
  /// Cross-frame transaction: Begin clones server-side state bound to
  /// this connection (returns the base version), EditOps applies ops
  /// to it, EditCommit publishes (FailedPrecondition on conflict) and
  /// EditAbort discards. Disconnecting aborts implicitly.
  Result<uint64_t> EditBegin(const std::string& document);
  Status EditOps(std::vector<EditOp> ops);
  Result<uint64_t> EditCommit();
  Status EditAbort();
  /// Replication tail (SYNC): encoded WAL records for `document` with
  /// version > from_version — one response item each — plus the
  /// primary's current version in the version slot. Zero items means
  /// caught up. Requires a primary with a durability log attached.
  Result<Response> Sync(const std::string& document, uint64_t from_version);
  Result<std::vector<std::string>> List();
  /// "key value" lines of server/service/cache counters.
  Result<std::vector<std::string>> Stat();
  /// The server's full Prometheus-style text exposition (METRICS):
  /// every counter, gauge, and latency histogram in one blob.
  Result<std::string> Metrics();
  /// The newest `n` sampled request traces (TRACE), each a multi-line
  /// per-stage timing dump, newest first.
  Result<std::vector<std::string>> Traces(uint64_t n);
  Status Ping();

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  FrameDecoder decoder_;
};

}  // namespace cxml::net

#endif  // CXML_NET_CLIENT_H_
