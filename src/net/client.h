#ifndef CXML_NET_CLIENT_H_
#define CXML_NET_CLIENT_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "service/query_cache.h"

namespace cxml::net {

/// Degradation policy for Client: per-request deadlines, transparent
/// reconnect, and bounded exponential-backoff retry. Retries apply
/// ONLY to idempotent verbs (QUERY/QRUN/QCOLL/LIST/STAT/SYNC, plus
/// PING/METRICS/TRACE) — a write (EDIT/ECOMMIT/REGISTER/IMPORT/...) whose
/// connection dies mid-call has an unknown outcome and must surface
/// the error instead of risking a double-apply. A reconnect before
/// anything is sent is safe for every verb and happens for all.
struct RetryPolicy {
  /// Total tries per Call: the first attempt plus retries. 1 disables
  /// retry entirely.
  int max_attempts = 4;
  /// Backoff before retry k is min(base << k, max) milliseconds, with
  /// uniform jitter in [delay/2, delay] so a fleet of retrying clients
  /// doesn't stampede in lockstep. A server shed response's
  /// retry_after_ms hint raises the floor of the computed delay.
  int backoff_base_ms = 10;
  int backoff_max_ms = 500;
  /// Per-attempt deadline on socket sends and receives (SO_SNDTIMEO /
  /// SO_RCVTIMEO); an attempt that exceeds it fails with
  /// kDeadlineExceeded and the connection closes (the response may
  /// still be in flight — the stream is no longer aligned). 0 = none.
  int deadline_ms = 0;
  /// Jitter RNG seed, so chaos tests replay deterministically.
  uint64_t seed = 1;
};

/// Blocking CXP/1 client: one TCP connection, one outstanding request
/// at a time (Call writes a frame, then reads until the matching
/// response frame). Not thread-safe — give each thread its own Client,
/// as the load generator does. A transport or framing failure is
/// terminal for the underlying connection, but Call reconnects and
/// retries per RetryPolicy (idempotent verbs only), counting
/// cxml_retry_* on the global metrics registry.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                RetryPolicy policy = RetryPolicy());

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_.valid(); }
  /// Successful retried attempts + reconnects this client performed —
  /// the local view of the cxml_retry_* counters.
  uint64_t retries() const { return retries_; }

  /// Round trip with the policy applied: reconnects a dead connection
  /// before sending (safe for every verb — nothing is in flight), then
  /// retries transport failures, deadline hits, and ERR Unavailable
  /// shed responses with jittered backoff — idempotent verbs only.
  /// The Result is transport-level; an ERR frame from the server
  /// arrives as an ok() Result whose Response carries the non-OK
  /// Status.
  Result<Response> Call(const Request& request);

  /// Convenience wrappers folding the two error layers into one.
  Result<Response> Query(const std::string& document,
                         const std::string& expression,
                         service::QueryKind kind);
  /// Compiles an expression server-side (QPREPARE) and returns its
  /// prepared-query id. The id is bound to this connection and dies
  /// with it; Run executes it against any document without re-sending
  /// the expression bytes.
  Result<uint64_t> Prepare(service::QueryKind kind,
                           const std::string& expression);
  /// Executes a prepared query (QRUN) — a QUERY-shaped response.
  /// Unknown ids come back as the server's ERR NotFound.
  Result<Response> Run(const std::string& document, uint64_t qid);
  /// Uploads CXG1 snapshot bytes; returns the registered version (1).
  Result<uint64_t> Register(const std::string& document,
                            std::string snapshot_bytes);
  /// Uploads external markup (IMPORT): the server parses `payload` as
  /// `format` ("xml" | "tei" | "html") into a multi-hierarchy GODDAG
  /// and registers it as `document`, returning the version (1). A
  /// rejected parse surfaces as the server's ERR InvalidArgument with
  /// nothing registered. Not idempotent (it publishes a version), so
  /// never auto-retried mid-call.
  Result<uint64_t> Import(const std::string& document,
                          const std::string& format, std::string payload);
  /// Runs a prepared query over every document matching the glob
  /// `pattern` (QCOLL): one item per result, `<document>\t`-prefixed,
  /// merged in (document, rank) order; the matched-document count
  /// rides in the version slot and cache_hit=false flags a truncated
  /// collection.
  Result<Response> CollectionRun(const std::string& pattern, uint64_t qid);
  Status Remove(const std::string& document);
  /// Applies `ops` in one server-side transaction and commits; returns
  /// the published version. A conflicting commit returns the server's
  /// FailedPrecondition.
  Result<uint64_t> Edit(const std::string& document,
                        std::vector<EditOp> ops);
  /// Cross-frame transaction: Begin clones server-side state bound to
  /// this connection (returns the base version), EditOps applies ops
  /// to it, EditCommit publishes (FailedPrecondition on conflict) and
  /// EditAbort discards. Disconnecting aborts implicitly.
  Result<uint64_t> EditBegin(const std::string& document);
  Status EditOps(std::vector<EditOp> ops);
  Result<uint64_t> EditCommit();
  Status EditAbort();
  /// Replication tail (SYNC): encoded WAL records for `document` with
  /// version > from_version — one response item each — plus the
  /// primary's current version in the version slot. Zero items means
  /// caught up. Requires a primary with a durability log attached.
  Result<Response> Sync(const std::string& document, uint64_t from_version);
  Result<std::vector<std::string>> List();
  /// "key value" lines of server/service/cache counters.
  Result<std::vector<std::string>> Stat();
  /// The server's full Prometheus-style text exposition (METRICS):
  /// every counter, gauge, and latency histogram in one blob.
  Result<std::string> Metrics();
  /// The newest `n` sampled request traces (TRACE), each a multi-line
  /// per-stage timing dump, newest first.
  Result<std::vector<std::string>> Traces(uint64_t n);
  Status Ping();
  /// Failover (PROMOTE): asks a read-only follower to become a
  /// writable primary; returns the version frontier it promoted at.
  /// Never auto-retried — promotion must stay an explicit decision.
  Result<uint64_t> Promote();
  /// Fault-injection admin (FAULT <action> [point [spec]]). LIST
  /// answers one item per armed point with the seed in the version
  /// slot; the mutating actions answer OK.
  Result<Response> Fault(const std::string& action,
                         const std::string& point = "",
                         const std::string& spec = "");

 private:
  Client(Fd fd, std::string host, uint16_t port, RetryPolicy policy)
      : fd_(std::move(fd)), host_(std::move(host)), port_(port),
        policy_(policy), rng_(policy.seed) {}

  /// One unretried round trip on the current connection; any failure
  /// closes the fd so the next Call reconnects.
  Result<Response> CallOnce(const Request& request);
  /// Re-establishes the connection (fresh socket, fresh frame decoder,
  /// deadlines re-applied).
  Status Reconnect();
  /// Sleeps the jittered backoff before retry `attempt`, honouring the
  /// server's retry_after_ms floor when one was given (0 = none).
  void Backoff(int attempt, int server_hint_ms);

  Fd fd_;
  std::string host_;
  uint16_t port_ = 0;
  RetryPolicy policy_;
  std::mt19937_64 rng_;
  uint64_t retries_ = 0;
  FrameDecoder decoder_;
};

}  // namespace cxml::net

#endif  // CXML_NET_CLIENT_H_
