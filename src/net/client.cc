#include "net/client.h"

#include <utility>

#include "common/strings.h"

namespace cxml::net {

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  CXML_ASSIGN_OR_RETURN(Fd fd, ConnectTcp(host, port));
  return Client(std::move(fd));
}

Result<Response> Client::Call(const Request& request) {
  if (!fd_.valid()) {
    return status::FailedPrecondition("client is not connected");
  }
  Status sent = SendAll(fd_, EncodeFrame(RenderRequest(request)));
  if (!sent.ok()) {
    fd_.Close();
    return sent;
  }
  std::string payload;
  while (!decoder_.Next(&payload)) {
    char buffer[64 * 1024];
    auto received = RecvSome(fd_, buffer, sizeof(buffer));
    if (!received.ok()) {
      fd_.Close();
      return received.status();
    }
    if (*received == 0) {
      fd_.Close();
      return status::Internal(
          "server closed the connection before responding");
    }
    Status fed = decoder_.Feed(std::string_view(buffer, *received));
    if (!fed.ok()) {
      fd_.Close();
      return fed.WithContext("decoding server frame");
    }
  }
  return ParseResponse(payload);
}

namespace {

/// Folds transport errors and application ERRs into one Status layer.
Result<Response> Flatten(Result<Response> response) {
  if (!response.ok()) return response;
  if (!response->ok()) return response->status;
  return response;
}

}  // namespace

Result<Response> Client::Query(const std::string& document,
                               const std::string& expression,
                               service::QueryKind kind) {
  Request request;
  request.verb = Verb::kQuery;
  request.document = document;
  request.kind = kind;
  request.body = expression;
  return Flatten(Call(request));
}

Result<uint64_t> Client::Prepare(service::QueryKind kind,
                                 const std::string& expression) {
  Request request;
  request.verb = Verb::kQueryPrepare;
  request.kind = kind;
  request.body = expression;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  // The prepared-query id rides in the version slot (see protocol.h).
  return response.version;
}

Result<Response> Client::Run(const std::string& document, uint64_t qid) {
  Request request;
  request.verb = Verb::kQueryRun;
  request.document = document;
  request.qid = qid;
  return Flatten(Call(request));
}

Result<uint64_t> Client::Register(const std::string& document,
                                  std::string snapshot_bytes) {
  Request request;
  request.verb = Verb::kRegister;
  request.document = document;
  request.body = std::move(snapshot_bytes);
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Status Client::Remove(const std::string& document) {
  Request request;
  request.verb = Verb::kRemove;
  request.document = document;
  return Flatten(Call(request)).status();
}

Result<uint64_t> Client::Edit(const std::string& document,
                              std::vector<EditOp> ops) {
  // Reject tags that would change an op line's shape (whitespace or a
  // newline in a tag injects tokens/ops) before they reach the wire.
  CXML_RETURN_IF_ERROR(ValidateEditOps(ops));
  Request request;
  request.verb = Verb::kEdit;
  request.document = document;
  request.ops = std::move(ops);
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Result<uint64_t> Client::EditBegin(const std::string& document) {
  Request request;
  request.verb = Verb::kEditBegin;
  request.document = document;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Status Client::EditOps(std::vector<EditOp> ops) {
  CXML_RETURN_IF_ERROR(ValidateEditOps(ops));
  Request request;
  request.verb = Verb::kEditOp;
  request.ops = std::move(ops);
  return Flatten(Call(request)).status();
}

Result<uint64_t> Client::EditCommit() {
  Request request;
  request.verb = Verb::kEditCommit;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Status Client::EditAbort() {
  Request request;
  request.verb = Verb::kEditAbort;
  return Flatten(Call(request)).status();
}

Result<Response> Client::Sync(const std::string& document,
                              uint64_t from_version) {
  Request request;
  request.verb = Verb::kSync;
  request.document = document;
  request.from_version = from_version;
  return Flatten(Call(request));
}

Result<std::vector<std::string>> Client::List() {
  Request request;
  request.verb = Verb::kList;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return std::move(response.items);
}

Result<std::vector<std::string>> Client::Stat() {
  Request request;
  request.verb = Verb::kStat;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return std::move(response.items);
}

Result<std::string> Client::Metrics() {
  Request request;
  request.verb = Verb::kMetrics;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  if (response.items.size() != 1) {
    return status::Internal(
        StrFormat("METRICS answered %zu items, expected exactly 1",
                  response.items.size()));
  }
  return std::move(response.items[0]);
}

Result<std::vector<std::string>> Client::Traces(uint64_t n) {
  Request request;
  request.verb = Verb::kTrace;
  request.count = n;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return std::move(response.items);
}

Status Client::Ping() {
  Request request;
  request.verb = Verb::kPing;
  return Flatten(Call(request)).status();
}

}  // namespace cxml::net
