#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"

namespace cxml::net {

namespace {

/// Verbs safe to re-send after a failure whose outcome is unknown:
/// they change no server state, so a duplicate execution is invisible.
/// Everything that writes (EDIT, the EBEGIN family, REGISTER, IMPORT,
/// REMOVE) and the explicit admin verbs (PROMOTE, FAULT) are excluded.
bool IsIdempotent(Verb verb) {
  switch (verb) {
    case Verb::kQuery:
    case Verb::kQueryRun:
    case Verb::kCollectionQuery:
    case Verb::kList:
    case Verb::kStat:
    case Verb::kSync:
    case Verb::kPing:
    case Verb::kMetrics:
    case Verb::kTrace:
      return true;
    default:
      return false;
  }
}

/// Extracts the server's "retry_after_ms=<n>" hint from a shed
/// response's message; 0 when absent.
int ParseRetryAfterMs(const std::string& message) {
  constexpr std::string_view kKey = "retry_after_ms=";
  size_t at = message.find(kKey);
  if (at == std::string::npos) return 0;
  uint64_t value = 0;
  size_t i = at + kKey.size();
  size_t digits = 0;
  while (i < message.size() && message[i] >= '0' && message[i] <= '9' &&
         digits < 9) {
    value = value * 10 + static_cast<uint64_t>(message[i] - '0');
    ++i;
    ++digits;
  }
  return static_cast<int>(value);
}

obs::Counter* RetryCounter() {
  return obs::Registry::Global()->GetCounter("cxml_retry_total");
}

obs::Counter* ReconnectCounter() {
  return obs::Registry::Global()->GetCounter("cxml_retry_reconnects_total");
}

obs::Counter* GiveupCounter() {
  return obs::Registry::Global()->GetCounter("cxml_retry_giveups_total");
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               RetryPolicy policy) {
  CXML_ASSIGN_OR_RETURN(Fd fd, ConnectTcp(host, port));
  if (policy.deadline_ms > 0) {
    CXML_RETURN_IF_ERROR(SetRecvTimeout(fd, policy.deadline_ms));
    CXML_RETURN_IF_ERROR(SetSendTimeout(fd, policy.deadline_ms));
  }
  return Client(std::move(fd), host, port, policy);
}

Status Client::Reconnect() {
  fd_.Close();
  // A half-received response from the old connection must not be
  // misread as the new connection's first frame.
  decoder_ = FrameDecoder();
  CXML_ASSIGN_OR_RETURN(Fd fd, ConnectTcp(host_, port_));
  if (policy_.deadline_ms > 0) {
    CXML_RETURN_IF_ERROR(SetRecvTimeout(fd, policy_.deadline_ms));
    CXML_RETURN_IF_ERROR(SetSendTimeout(fd, policy_.deadline_ms));
  }
  fd_ = std::move(fd);
  ReconnectCounter()->Add();
  return Status::Ok();
}

void Client::Backoff(int attempt, int server_hint_ms) {
  int64_t delay = policy_.backoff_base_ms;
  for (int i = 0; i < attempt && delay < policy_.backoff_max_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<int64_t>(delay, policy_.backoff_max_ms);
  if (delay > 1) {
    // Jitter in [delay/2, delay]: desynchronizes retrying clients.
    std::uniform_int_distribution<int64_t> dist(delay / 2, delay);
    delay = dist(rng_);
  }
  delay = std::max<int64_t>(delay, server_hint_ms);
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

Result<Response> Client::Call(const Request& request) {
  const bool idempotent = IsIdempotent(request.verb);
  const int max_attempts = std::max(1, policy_.max_attempts);
  for (int attempt = 0;; ++attempt) {
    Status broken = Status::Ok();
    int server_hint_ms = 0;
    if (!fd_.valid()) {
      // Nothing is in flight on a dead connection, so reconnecting
      // here is safe for every verb — including writes.
      broken = Reconnect();
    }
    if (broken.ok()) {
      Result<Response> response = CallOnce(request);
      if (response.ok()) {
        if (response->ok() ||
            response->status.code() != StatusCode::kUnavailable) {
          return response;
        }
        // The server shed us (overload or drain). The request was not
        // executed, so retrying is still outcome-safe — but only
        // idempotent verbs retry automatically; writers must decide.
        if (!idempotent || attempt + 1 >= max_attempts) {
          if (idempotent) GiveupCounter()->Add();
          return response;
        }
        server_hint_ms = ParseRetryAfterMs(response->status.message());
        broken = response->status;
      } else {
        broken = response.status();
        if (!idempotent || attempt + 1 >= max_attempts) {
          if (idempotent) GiveupCounter()->Add();
          return response;
        }
      }
    } else if (!idempotent || attempt + 1 >= max_attempts) {
      if (idempotent) GiveupCounter()->Add();
      return broken;
    }
    retries_++;
    RetryCounter()->Add();
    Backoff(attempt, server_hint_ms);
  }
}

Result<Response> Client::CallOnce(const Request& request) {
  if (!fd_.valid()) {
    return status::FailedPrecondition("client is not connected");
  }
  Status sent = SendAll(fd_, EncodeFrame(RenderRequest(request)));
  if (!sent.ok()) {
    fd_.Close();
    return sent;
  }
  std::string payload;
  while (!decoder_.Next(&payload)) {
    char buffer[64 * 1024];
    auto received = RecvSome(fd_, buffer, sizeof(buffer));
    if (!received.ok()) {
      fd_.Close();
      return received.status();
    }
    if (*received == 0) {
      fd_.Close();
      return status::Internal(
          "server closed the connection before responding");
    }
    Status fed = decoder_.Feed(std::string_view(buffer, *received));
    if (!fed.ok()) {
      fd_.Close();
      return fed.WithContext("decoding server frame");
    }
  }
  return ParseResponse(payload);
}

namespace {

/// Folds transport errors and application ERRs into one Status layer.
Result<Response> Flatten(Result<Response> response) {
  if (!response.ok()) return response;
  if (!response->ok()) return response->status;
  return response;
}

}  // namespace

Result<Response> Client::Query(const std::string& document,
                               const std::string& expression,
                               service::QueryKind kind) {
  Request request;
  request.verb = Verb::kQuery;
  request.document = document;
  request.kind = kind;
  request.body = expression;
  return Flatten(Call(request));
}

Result<uint64_t> Client::Prepare(service::QueryKind kind,
                                 const std::string& expression) {
  Request request;
  request.verb = Verb::kQueryPrepare;
  request.kind = kind;
  request.body = expression;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  // The prepared-query id rides in the version slot (see protocol.h).
  return response.version;
}

Result<Response> Client::Run(const std::string& document, uint64_t qid) {
  Request request;
  request.verb = Verb::kQueryRun;
  request.document = document;
  request.qid = qid;
  return Flatten(Call(request));
}

Result<uint64_t> Client::Register(const std::string& document,
                                  std::string snapshot_bytes) {
  Request request;
  request.verb = Verb::kRegister;
  request.document = document;
  request.body = std::move(snapshot_bytes);
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Result<uint64_t> Client::Import(const std::string& document,
                                const std::string& format,
                                std::string payload) {
  Request request;
  request.verb = Verb::kImport;
  request.document = document;
  request.format = format;
  request.body = std::move(payload);
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Result<Response> Client::CollectionRun(const std::string& pattern,
                                       uint64_t qid) {
  Request request;
  request.verb = Verb::kCollectionQuery;
  request.pattern = pattern;
  request.qid = qid;
  return Flatten(Call(request));
}

Status Client::Remove(const std::string& document) {
  Request request;
  request.verb = Verb::kRemove;
  request.document = document;
  return Flatten(Call(request)).status();
}

Result<uint64_t> Client::Edit(const std::string& document,
                              std::vector<EditOp> ops) {
  // Reject tags that would change an op line's shape (whitespace or a
  // newline in a tag injects tokens/ops) before they reach the wire.
  CXML_RETURN_IF_ERROR(ValidateEditOps(ops));
  Request request;
  request.verb = Verb::kEdit;
  request.document = document;
  request.ops = std::move(ops);
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Result<uint64_t> Client::EditBegin(const std::string& document) {
  Request request;
  request.verb = Verb::kEditBegin;
  request.document = document;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Status Client::EditOps(std::vector<EditOp> ops) {
  CXML_RETURN_IF_ERROR(ValidateEditOps(ops));
  Request request;
  request.verb = Verb::kEditOp;
  request.ops = std::move(ops);
  return Flatten(Call(request)).status();
}

Result<uint64_t> Client::EditCommit() {
  Request request;
  request.verb = Verb::kEditCommit;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return response.version;
}

Status Client::EditAbort() {
  Request request;
  request.verb = Verb::kEditAbort;
  return Flatten(Call(request)).status();
}

Result<Response> Client::Sync(const std::string& document,
                              uint64_t from_version) {
  Request request;
  request.verb = Verb::kSync;
  request.document = document;
  request.from_version = from_version;
  return Flatten(Call(request));
}

Result<std::vector<std::string>> Client::List() {
  Request request;
  request.verb = Verb::kList;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return std::move(response.items);
}

Result<std::vector<std::string>> Client::Stat() {
  Request request;
  request.verb = Verb::kStat;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return std::move(response.items);
}

Result<std::string> Client::Metrics() {
  Request request;
  request.verb = Verb::kMetrics;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  if (response.items.size() != 1) {
    return status::Internal(
        StrFormat("METRICS answered %zu items, expected exactly 1",
                  response.items.size()));
  }
  return std::move(response.items[0]);
}

Result<std::vector<std::string>> Client::Traces(uint64_t n) {
  Request request;
  request.verb = Verb::kTrace;
  request.count = n;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  return std::move(response.items);
}

Status Client::Ping() {
  Request request;
  request.verb = Verb::kPing;
  return Flatten(Call(request)).status();
}

Result<uint64_t> Client::Promote() {
  Request request;
  request.verb = Verb::kPromote;
  CXML_ASSIGN_OR_RETURN(Response response, Flatten(Call(request)));
  // The promoted version frontier rides in the version slot.
  return response.version;
}

Result<Response> Client::Fault(const std::string& action,
                               const std::string& point,
                               const std::string& spec) {
  Request request;
  request.verb = Verb::kFault;
  request.fault_action = action;
  request.fault_point = point;
  request.fault_spec = spec;
  return Flatten(Call(request));
}

}  // namespace cxml::net
