#ifndef CXML_NET_PROTOCOL_H_
#define CXML_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cmh/hierarchy.h"
#include "common/interval.h"
#include "common/result.h"
#include "service/query_cache.h"

namespace cxml::net {

/// CXP/1 — the wire protocol of the document service. Each frame
/// payload (see frame.h) is one message. Requests put a text command
/// line first; everything after the first newline is the body, which
/// may be arbitrary bytes:
///
///   QUERY <doc> XPATH|XQUERY \n <expression>
///   QPREPARE XPATH|XQUERY \n <expression>
///   QRUN <doc> <qid>
///   EDIT <doc> \n (SELECT <begin> <end> | APPLY <hierarchy> <tag>)... COMMIT
///   EBEGIN <doc>
///   EOP \n (SELECT <begin> <end> | APPLY <hierarchy> <tag>)...
///   ECOMMIT
///   EABORT
///   REGISTER <doc> \n <CXG1 snapshot bytes>
///   IMPORT <doc> xml|tei|html \n <markup bytes>
///   REMOVE <doc>
///   QCOLL <pattern> <qid>
///   LIST
///   STAT
///   METRICS
///   TRACE <n>
///   PING
///   SYNC <doc> <from_version>
///   PROMOTE
///   FAULT LIST | FAULT CLEAR | FAULT SEED <n> |
///   FAULT ARM <point> <spec> | FAULT DISARM <point>
///
/// QPREPARE compiles the expression server-side once (parse + static
/// analysis, see service::QueryService::Prepare) and answers
/// `OK 0 <qid> 0` — the prepared-query id rides in the version slot.
/// QRUN then executes the handle against any document with a QUERY-
/// shaped response, without re-sending or re-parsing the expression.
/// Handle ids are per-connection (a QRUN with an unknown or another
/// connection's qid earns ERR NotFound) and die with it; the handles
/// themselves are deduplicated service-wide by canonical text, so many
/// connections preparing the same query share one compiled object.
///
/// EDIT op lines apply in order to one server-side EditTransaction;
/// the COMMIT line (required, last) publishes it — an optimistic
/// conflict comes back as an ERR FailedPrecondition frame, exactly as
/// the in-process API surfaces it. EBEGIN/EOP/ECOMMIT/EABORT are the
/// same transaction spread over frames: EBEGIN clones the current
/// snapshot into a transaction held in the connection's state machine
/// (answering with the base version), EOP frames apply ops to it, and
/// ECOMMIT publishes — so a commit that lands on another connection in
/// between surfaces the optimistic conflict to this one. At most one
/// open transaction per connection; closing the connection aborts it.
/// Responses share one shape:
///
///   OK <nitems> <version> <hit:0|1> \n (<len> <item bytes> \n)...
///   ERR <StatusCode> <message>
///
/// so REGISTER/EDIT answer with zero items and the published version,
/// LIST/STAT answer with one item per name / "key value" line, and
/// QUERY answers with the string-rendered result items (length-
/// prefixed: items may contain spaces and newlines).
///
/// METRICS answers with exactly one item: the service registry's full
/// Prometheus-style text exposition (obs::Registry::RenderText) —
/// every counter, gauge, and histogram STAT summarises, plus the
/// latency histograms STAT has no room for. TRACE <n> answers with one
/// item per retained request trace (newest first, at most n), each a
/// multi-line obs::Trace::Render dump of the request's timed stages.
///
/// SYNC is the replication verb: a follower asks for everything that
/// happened to <doc> after <from_version>. The response is
/// QUERY-shaped — one item per encoded WAL record (wal::EncodeRecord
/// bytes: length-prefixed, CRC-checked, strictly ascending versions,
/// all > from_version), with the primary's current version in the
/// version slot so a caught-up follower (zero items) still learns its
/// lag. A follower that has fallen behind the primary's retained tail
/// receives one full-snapshot record instead of history. Primaries
/// answer SYNC only when a durability log is attached
/// (net::SyncSource); otherwise it earns ERR Unimplemented.
///
/// PROMOTE is the failover verb: a read-only `--follow` replica stops
/// tailing its primary, seals the inherited log with a promotion
/// record, and starts accepting writes — answering with the version
/// frontier it promoted at (the max across documents). On a server
/// with no promotion hook (a born-primary) it earns
/// ERR FailedPrecondition.
///
/// FAULT is the fault-injection admin verb (see fault::Injector): LIST
/// answers one item per armed point, ARM/DISARM/CLEAR/SEED mutate the
/// schedule table. A server started without an injector answers
/// ERR Unimplemented.
///
/// IMPORT is the ingestion verb: the body is external markup (strict
/// XML, TEI with overlap conventions, or lenient HTML — see
/// ingest::Format) that the server parses into a multi-hierarchy
/// GODDAG and registers as <doc> at version 1, answering like
/// REGISTER. The body is size-capped (ServerOptions::max_import_bytes)
/// and a parse or convention error rejects the frame with
/// ERR InvalidArgument *without* registering anything. Like REGISTER
/// it requires allow_register and is refused on read-only replicas.
///
/// QCOLL is the collection-query verb: it runs a prepared handle (a
/// qid from QPREPARE on this connection, like QRUN) over every
/// document whose name matches <pattern> (glob: `*` any run, `?` one
/// character), fanning out across store shards on the query pool. The
/// response is QUERY-shaped with one item per result, each prefixed
/// `<document>\t`, merged in (document, rank) order; the number of
/// matched documents rides in the version slot. Results are capped
/// per collection (ServerOptions::max_collection_results) — a
/// truncated answer flips the hit flag to 0 and is cut in merge
/// order. No matching document earns ERR NotFound.

enum class Verb : uint8_t {
  kQuery,
  kQueryPrepare,
  kQueryRun,
  kEdit,
  kEditBegin,
  kEditOp,
  kEditCommit,
  kEditAbort,
  kRegister,
  kImport,
  kRemove,
  kCollectionQuery,
  kList,
  kStat,
  kMetrics,
  kTrace,
  kPing,
  kSync,
  kPromote,
  kFault,
};

const char* VerbToString(Verb verb);

/// One line of an EDIT body, mirroring edit::EditSession's
/// select-then-apply interaction model.
struct EditOp {
  enum class Kind : uint8_t { kSelect, kApply };
  Kind kind = Kind::kSelect;
  /// kSelect: the character range.
  Interval chars;
  /// kApply: the target hierarchy and tag.
  cmh::HierarchyId hierarchy = 0;
  std::string tag;

  static EditOp Select(size_t begin, size_t end) {
    EditOp op;
    op.kind = Kind::kSelect;
    op.chars = Interval(begin, end);
    return op;
  }
  static EditOp Apply(cmh::HierarchyId hierarchy, std::string tag) {
    EditOp op;
    op.kind = Kind::kApply;
    op.hierarchy = hierarchy;
    op.tag = std::move(tag);
    return op;
  }
};

/// A parsed request — the server's view of one frame, and the value
/// the client renders one from.
struct Request {
  Verb verb = Verb::kPing;
  /// QUERY / EDIT / REGISTER / REMOVE target.
  std::string document;
  /// QUERY / QPREPARE: how `body` is interpreted.
  service::QueryKind kind = service::QueryKind::kXPath;
  /// QUERY / QPREPARE: the expression; REGISTER: the CXG1 bytes;
  /// IMPORT: the external markup bytes.
  std::string body;
  /// IMPORT: the markup dialect token ("xml" | "tei" | "html").
  std::string format;
  /// QCOLL: the document-name glob pattern.
  std::string pattern;
  /// QRUN / QCOLL: the prepared-query id returned by QPREPARE.
  uint64_t qid = 0;
  /// TRACE: how many retained traces to return (newest first).
  uint64_t count = 0;
  /// SYNC: return records with version > from_version.
  uint64_t from_version = 0;
  /// EDIT / EOP: the op sequence (EDIT's trailing COMMIT is implicit
  /// in the struct form — rendering appends it, parsing requires it).
  std::vector<EditOp> ops;
  /// FAULT: the subcommand ("LIST", "CLEAR", "SEED", "ARM", "DISARM"),
  /// its target point, and the ARM spec / SEED value.
  std::string fault_action;
  std::string fault_point;
  std::string fault_spec;
};

/// A parsed response. `status` carries the application-level ERR (a
/// transport-intact frame whose command failed); the surrounding
/// Result is reserved for malformed payloads.
struct Response {
  Status status;
  std::vector<std::string> items;
  uint64_t version = 0;
  bool cache_hit = false;

  bool ok() const { return status.ok(); }
};

/// Document names travel unquoted on the command line: nonempty,
/// at most 256 bytes, no whitespace or control bytes.
Status ValidateDocumentName(std::string_view name);

/// QCOLL patterns travel under the same token rules (glob characters
/// `*` and `?` pass; whitespace and control bytes do not).
Status ValidateCollectionPattern(std::string_view pattern);

/// APPLY tags travel unquoted on an op line under the same rules — a
/// tag with embedded whitespace would change the line's arity, and a
/// newline would inject a whole op. Enforced when rendering (client)
/// and when parsing (server).
Status ValidateEditOps(const std::vector<EditOp>& ops);

std::string RenderRequest(const Request& request);
Result<Request> ParseRequest(std::string_view payload);

/// The op-line sub-grammar (`SELECT <begin> <end>` / `APPLY <h> <tag>`
/// lines, newline-separated, no COMMIT) on its own — the wire text is
/// also the WAL's replayable record payload, so durability and
/// replication re-parse exactly what the server parsed.
std::string RenderOps(const std::vector<EditOp>& ops);
Result<std::vector<EditOp>> ParseOps(std::string_view body);

/// Response renderers (server side).
std::string RenderItems(const std::vector<std::string>& items,
                        uint64_t version, bool cache_hit);
std::string RenderVersion(uint64_t version);
std::string RenderOk();
std::string RenderError(const Status& status);

/// Response parser (client side). Fails only on unparseable payloads;
/// an ERR frame parses into a Response carrying its Status.
Result<Response> ParseResponse(std::string_view payload);

}  // namespace cxml::net

#endif  // CXML_NET_PROTOCOL_H_
