#ifndef CXML_NET_SOCKET_H_
#define CXML_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace cxml::net {

/// Thin portable wrappers over POSIX TCP sockets — the only file in
/// net/ that touches OS headers, so the server/client logic stays
/// testable and platform drift stays in one place. All functions
/// return Status/Result instead of errno.

/// RAII file descriptor; -1 means empty. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Binds + listens on `address:port` (numeric IPv4/IPv6 or hostname);
/// port 0 picks an ephemeral port — read it back with LocalPort.
Result<Fd> ListenTcp(const std::string& address, uint16_t port,
                     int backlog = 128);

/// Blocking connect; the returned socket has TCP_NODELAY set (CXP/1
/// frames are small request/response pairs — Nagle would serialize
/// them against delayed ACKs).
Result<Fd> ConnectTcp(const std::string& host, uint16_t port);

/// The locally bound port of a listening or connected socket.
Result<uint16_t> LocalPort(const Fd& fd);

Status SetNonBlocking(const Fd& fd);
Status SetNoDelay(const Fd& fd);

/// Per-operation deadlines on a blocking socket (SO_RCVTIMEO /
/// SO_SNDTIMEO). 0 clears the timeout. A blocking recv/send that hits
/// one surfaces as kDeadlineExceeded from RecvSome/SendAll.
Status SetRecvTimeout(const Fd& fd, int timeout_ms);
Status SetSendTimeout(const Fd& fd, int timeout_ms);

/// Blocking write of the whole buffer (retries partial sends / EINTR).
Status SendAll(const Fd& fd, std::string_view bytes);

/// Blocking read of at most `capacity` bytes. 0 means orderly EOF.
Result<size_t> RecvSome(const Fd& fd, char* buffer, size_t capacity);

}  // namespace cxml::net

#endif  // CXML_NET_SOCKET_H_
