#ifndef CXML_OBS_METRICS_H_
#define CXML_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cxml::obs {

/// Lock-cheap metrics primitives shared by every layer of the stack.
///
/// Design constraints, in order:
///  * the hot path (a counter bump on a cached query) must cost a
///    handful of nanoseconds — one relaxed atomic RMW on a shard the
///    calling thread probably owns in cache, never a mutex;
///  * reads (STAT, METRICS, bench snapshots) may be slow — they sum
///    shards and walk buckets under no particular latency budget;
///  * metric objects never move or die before their Registry, so
///    components cache raw pointers at construction and touch them
///    lock-free forever after.
///
/// All three metric kinds are safe for concurrent writers and
/// concurrent readers; totals are exact for counters/gauges and exact
/// in count (bucketed in value) for histograms.

/// Number of independently updated shards per counter. Sixteen covers
/// the worker-pool sizes the service runs with; a thread picks its
/// shard by thread-id hash, so unrelated threads rarely share a cache
/// line even under the default pool sizes.
inline constexpr size_t kCounterShards = 16;

/// A monotonically increasing counter, sharded to keep concurrent
/// writers off each other's cache lines. Value() sums the shards —
/// exact, since every Add lands wholly in one shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kCounterShards> shards_;
};

/// A point-in-time signed value (pool sizes, open connections).
/// Unsharded: gauges are updated at connection/document cadence, not
/// per request, so a single relaxed atomic is contention-free.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket log-scale latency histogram.
///
/// Bucket i covers [LowerBound(i), UpperBound(i)) with boundaries at
/// 2^(i/8 - 2): eight buckets per octave from 0.25 up past 2^29
/// (~9% relative width per bucket), sized for microsecond latencies
/// from sub-µs cache hits to minutes-long batch jobs. Observations are
/// clamped into the edge buckets, so Count()/Sum() stay exact even for
/// out-of-range values; only the bucketing is lossy.
///
/// Percentile() finds the bucket holding the requested rank and
/// log-interpolates inside it, so the result is within one bucket
/// width (~9% relative) of the exact order statistic — tight enough
/// that p50/p99 comparisons across runs are meaningful, loose enough
/// that Observe stays a single relaxed fetch_add.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 256;
  static constexpr int kBucketsPerOctave = 8;
  /// log2 of the first bucket's lower bound (2^-2 = 0.25).
  static constexpr int kMinExponent = -2;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation (typically microseconds; the histogram is
  /// unit-agnostic). Values <= 0 land in the first bucket.
  void Observe(double value);

  uint64_t Count() const;
  /// Sum of observed values (accumulated in nanounits, so sub-unit
  /// observations don't vanish; exact to 1e-3 of the unit).
  double Sum() const;

  /// The interpolated value at quantile `p` in [0, 1]; 0 when empty.
  double Percentile(double p) const;

  /// Inclusive lower / exclusive upper value boundary of bucket `i`.
  static double LowerBound(size_t i);
  static double UpperBound(size_t i);
  /// The bucket `value` falls into (clamped to the edge buckets).
  static size_t BucketFor(double value);

  /// Snapshot of all bucket counts (index-aligned with *Bound).
  std::vector<uint64_t> BucketCounts() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  /// Value sum scaled by 1000 to keep sub-unit precision in integers.
  std::atomic<uint64_t> sum_milli_{0};
};

/// Named-metric registry: the process-wide lookup table behind STAT,
/// the METRICS wire verb, and the bench JSON snapshots.
///
/// GetCounter/GetGauge/GetHistogram create on first use and return a
/// stable pointer that lives as long as the registry — components call
/// them once at construction and keep the raw pointer, paying the map
/// lookup never again. Each kind has its own namespace; asking for an
/// existing name with a different kind returns a distinct metric (the
/// renderer suffixes nothing — keep names unique across kinds).
///
/// Components that need instance-local stats (two QueryServices in one
/// test) simply use separate Registry instances; a process that wants
/// one exposition surface passes one registry around (see
/// QueryServiceOptions::registry).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Prometheus-style text exposition:
  ///
  ///   # TYPE <name> counter
  ///   <name> <value>
  ///   # TYPE <name> gauge
  ///   <name> <value>
  ///   # TYPE <name> histogram
  ///   <name>_bucket{le="<upper>"} <cumulative count>   (empty buckets
  ///   <name>_bucket{le="+Inf"} <count>                  elided)
  ///   <name>_sum <sum>
  ///   <name>_count <count>
  ///   <name>_p50 / _p90 / _p99 <value>   (interpolated quantiles)
  ///
  /// Output is sorted by metric name, so repeated renders of the same
  /// state are byte-identical (pinned by obs_test).
  std::string RenderText() const;

  /// The same snapshot as one JSON object: counters/gauges as numbers,
  /// histograms as {"count":..,"sum":..,"p50":..,"p90":..,"p99":..}.
  /// Embedded by the bench drivers into their BENCH_*.json.
  std::string RenderJson() const;

  /// The process-wide default instance (never destroyed).
  static Registry* Global();

 private:
  mutable std::mutex mu_;
  /// node-based maps: pointers stay valid across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cxml::obs

#endif  // CXML_OBS_METRICS_H_
