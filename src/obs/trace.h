#ifndef CXML_OBS_TRACE_H_
#define CXML_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cxml::obs {

/// Per-request tracing: a Trace is one request's tree of timed stages
/// (decode → queue → index → cache → eval → respond), assembled across
/// threads as the request crosses the server worker, the query-service
/// pool, and back. Traces are cheap enough to build for every request
/// — a handful of steady_clock reads and one small allocation — which
/// is what lets the slow-query log report per-stage micros for *any*
/// request that crosses the threshold, not just sampled ones; the
/// sampling rate only governs which finished traces are retained in
/// the ring buffer behind the TRACE wire verb.
class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Trace(uint64_t id) : id_(id), start_(Clock::now()) {}
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  uint64_t id() const { return id_; }

  /// Request identity for rendering — typically "VERB doc KIND
  /// hash=<canonical hash>", set once the request is decoded.
  void set_label(std::string label);
  std::string label() const;

  /// Starts a stage now; returns its index for parent links and
  /// EndStage. `parent` is a previously returned index or -1 (root).
  int StartStage(const char* name, int parent = -1);
  /// Stamps the stage's duration (now - its start). Idempotent-unsafe:
  /// call exactly once per index (TraceSpan does).
  void EndStage(int index);
  /// Attaches free-form detail ("hit", "indexed=3 pool_nodes=214").
  void SetStageNote(int index, std::string note);
  /// Records an already-measured stage from explicit timestamps — for
  /// intervals that span threads, like the submit→claim queue wait.
  int AddStageAbs(const char* name, Clock::time_point start,
                  Clock::time_point end, int parent = -1);

  /// Stamps the end-to-end total. Called once by Tracer::Finish.
  void Finish();
  uint64_t total_us() const { return total_us_.load(); }
  Clock::time_point start_time() const { return start_; }

  /// Multi-line rendering (TRACE wire verb / cxml_client trace):
  ///
  ///   #<id> <label> total=<N>us
  ///     decode 2us
  ///     service 144us
  ///       queue 10us
  ///       ...
  ///
  /// Children indent under their parent; stages print in start order.
  std::string Render() const;
  /// One-line slow-log rendering:
  ///   slow_query total_us=N label="..." stages=[decode=2us eval=110us(...)]
  std::string RenderLine() const;

 private:
  struct Stage {
    const char* name;
    uint64_t start_us = 0;
    uint64_t duration_us = 0;
    int parent = -1;
    std::string note;
    Clock::time_point begin;
  };

  uint64_t OffsetUs(Clock::time_point tp) const;

  const uint64_t id_;
  const Clock::time_point start_;
  std::atomic<uint64_t> total_us_{0};

  /// One mutex for label + stages: appends come from whichever thread
  /// currently owns the request, and the ring may render concurrently.
  mutable std::mutex mu_;
  std::string label_;
  std::vector<Stage> stages_;
};

using TracePtr = std::shared_ptr<Trace>;

/// RAII stage: starts on construction, records on End() or
/// destruction, whichever comes first. Inert (zero clock reads) when
/// constructed with a null trace, so instrumented code paths need no
/// branches of their own.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const TracePtr& trace, const char* name, int parent = -1)
      : trace_(trace.get()) {
    if (trace_ != nullptr) index_ = trace_->StartStage(name, parent);
  }
  ~TraceSpan() { End(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// The stage index for parenting child spans (-1 when inert).
  int index() const { return index_; }

  void set_note(std::string note) {
    if (trace_ != nullptr) trace_->SetStageNote(index_, std::move(note));
  }

  void End() {
    if (trace_ != nullptr) trace_->EndStage(index_);
    trace_ = nullptr;
  }
  void EndWithNote(std::string note) {
    set_note(std::move(note));
    End();
  }

 private:
  Trace* trace_ = nullptr;  // borrowed; caller keeps the TracePtr alive
  int index_ = -1;
};

/// Owns the trace lifecycle: hands out Trace objects, and on Finish
/// (a) emits the slow-query log line when the end-to-end total crosses
/// the threshold, and (b) retains every `sample_every`-th trace in a
/// bounded FIFO ring readable over the TRACE wire verb.
class Tracer {
 public:
  struct Options {
    /// Finished traces retained for TRACE; 0 disables retention.
    size_t ring_capacity = 64;
    /// Every Nth finished trace is retained (1 = all, 0 disables
    /// tracing entirely — Start returns null and requests pay nothing).
    uint32_t sample_every = 1;
    /// Requests slower than this (end-to-end µs) emit one structured
    /// slow-log line; 0 disables the log.
    uint64_t slow_query_us = 0;
  };

  /// `registry` receives the tracer's own counters
  /// (cxml_traces_sampled_total, cxml_slow_queries_total).
  Tracer(Options options, Registry* registry);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// A fresh in-flight trace, or null when tracing is disabled
  /// (sample_every == 0) — all downstream spans become inert.
  TracePtr Start();

  /// Finalizes: stamps the total, applies the slow-query threshold,
  /// and retains the trace in the ring per the sampling rate.
  void Finish(const TracePtr& trace);

  /// The newest `max` retained traces, rendered, newest first.
  std::vector<std::string> Recent(size_t max) const;
  size_t ring_size() const;

  uint64_t slow_query_us() const { return slow_query_us_.load(); }
  void set_slow_query_us(uint64_t us) { slow_query_us_.store(us); }

  /// Replaces the slow-log sink (default: one line to stderr).
  void SetSlowLogSink(std::function<void(const std::string&)> sink);

 private:
  const Options options_;
  std::atomic<uint64_t> slow_query_us_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> finished_{0};
  Counter* sampled_;
  Counter* slow_;

  mutable std::mutex mu_;
  std::deque<TracePtr> ring_;  // back = newest; FIFO eviction
  std::function<void(const std::string&)> sink_;
};

}  // namespace cxml::obs

#endif  // CXML_OBS_TRACE_H_
