#include "obs/trace.h"

#include <cstdio>

#include "common/strings.h"

namespace cxml::obs {

namespace {

uint64_t DurationUs(Trace::Clock::time_point from,
                    Trace::Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

void Trace::set_label(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  label_ = std::move(label);
}

std::string Trace::label() const {
  std::lock_guard<std::mutex> lock(mu_);
  return label_;
}

uint64_t Trace::OffsetUs(Clock::time_point tp) const {
  return DurationUs(start_, tp);
}

int Trace::StartStage(const char* name, int parent) {
  Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  Stage stage;
  stage.name = name;
  stage.start_us = OffsetUs(now);
  stage.parent = parent;
  stage.begin = now;
  stages_.push_back(std::move(stage));
  return static_cast<int>(stages_.size()) - 1;
}

void Trace::EndStage(int index) {
  Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || static_cast<size_t>(index) >= stages_.size()) return;
  Stage& stage = stages_[static_cast<size_t>(index)];
  stage.duration_us = DurationUs(stage.begin, now);
}

void Trace::SetStageNote(int index, std::string note) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || static_cast<size_t>(index) >= stages_.size()) return;
  stages_[static_cast<size_t>(index)].note = std::move(note);
}

int Trace::AddStageAbs(const char* name, Clock::time_point start,
                       Clock::time_point end, int parent) {
  std::lock_guard<std::mutex> lock(mu_);
  Stage stage;
  stage.name = name;
  stage.start_us = OffsetUs(start);
  stage.duration_us = DurationUs(start, end);
  stage.parent = parent;
  stage.begin = start;
  stages_.push_back(std::move(stage));
  return static_cast<int>(stages_.size()) - 1;
}

void Trace::Finish() {
  total_us_.store(OffsetUs(Clock::now()), std::memory_order_relaxed);
}

std::string Trace::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat(
      "#%llu %s total=%lluus\n", static_cast<unsigned long long>(id_),
      label_.empty() ? "(unlabeled)" : label_.c_str(),
      static_cast<unsigned long long>(total_us_.load()));
  // Depth via parent chain: stages append in start order, and a parent
  // always starts before its children, so one forward pass indents
  // correctly without sorting.
  std::vector<int> depth(stages_.size(), 0);
  for (size_t i = 0; i < stages_.size(); ++i) {
    int parent = stages_[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < i) {
      depth[i] = depth[static_cast<size_t>(parent)] + 1;
    }
    out.append(2 * (depth[i] + 1), ' ');
    out += StrFormat("%s %lluus", stages_[i].name,
                     static_cast<unsigned long long>(
                         stages_[i].duration_us));
    if (!stages_[i].note.empty()) {
      out += StrCat(" (", stages_[i].note, ")");
    }
    out += "\n";
  }
  return out;
}

std::string Trace::RenderLine() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat(
      "slow_query total_us=%llu label=\"%s\" stages=[",
      static_cast<unsigned long long>(total_us_.load()), label_.c_str());
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += " ";
    out += StrFormat("%s=%lluus", stages_[i].name,
                     static_cast<unsigned long long>(
                         stages_[i].duration_us));
    if (!stages_[i].note.empty()) {
      out += StrCat("(", stages_[i].note, ")");
    }
  }
  out += "]";
  return out;
}

Tracer::Tracer(Options options, Registry* registry)
    : options_(options),
      slow_query_us_(options.slow_query_us),
      sampled_(registry->GetCounter("cxml_traces_sampled_total")),
      slow_(registry->GetCounter("cxml_slow_queries_total")),
      sink_([](const std::string& line) {
        std::fprintf(stderr, "%s\n", line.c_str());
      }) {}

TracePtr Tracer::Start() {
  if (options_.sample_every == 0) return nullptr;
  return std::make_shared<Trace>(
      next_id_.fetch_add(1, std::memory_order_relaxed));
}

void Tracer::Finish(const TracePtr& trace) {
  if (trace == nullptr) return;
  trace->Finish();
  uint64_t slow_us = slow_query_us_.load(std::memory_order_relaxed);
  if (slow_us > 0 && trace->total_us() >= slow_us) {
    slow_->Add();
    std::function<void(const std::string&)> sink;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sink = sink_;
    }
    if (sink) sink(trace->RenderLine());
  }
  uint64_t seq = finished_.fetch_add(1, std::memory_order_relaxed);
  if (options_.ring_capacity == 0 || seq % options_.sample_every != 0) {
    return;
  }
  sampled_->Add();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(trace);
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

std::vector<std::string> Tracer::Recent(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  size_t n = ring_.size() < max ? ring_.size() : max;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[ring_.size() - 1 - i]->Render());
  }
  return out;
}

size_t Tracer::ring_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void Tracer::SetSlowLogSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

}  // namespace cxml::obs
