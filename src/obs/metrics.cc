#include "obs/metrics.h"

#include <cmath>
#include <thread>

#include "common/strings.h"

namespace cxml::obs {

size_t Counter::ShardIndex() {
  // Hash of the thread id, computed once per thread: the same thread
  // always lands on the same shard, so repeated bumps stay in one
  // cache line that no other core is likely writing.
  static thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      kCounterShards;
  return shard;
}

void Histogram::Observe(double value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (value > 0) {
    sum_milli_.fetch_add(static_cast<uint64_t>(value * 1000.0),
                         std::memory_order_relaxed);
  }
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return static_cast<double>(sum_milli_.load(std::memory_order_relaxed)) /
         1000.0;
}

double Histogram::LowerBound(size_t i) {
  return std::exp2(static_cast<double>(i) / kBucketsPerOctave +
                   kMinExponent);
}

double Histogram::UpperBound(size_t i) { return LowerBound(i + 1); }

size_t Histogram::BucketFor(double value) {
  if (!(value > 0)) return 0;  // also catches NaN
  double index =
      (std::log2(value) - kMinExponent) * kBucketsPerOctave;
  if (index < 0) return 0;
  // floor puts a value sitting exactly on a boundary into the bucket
  // whose lower bound it is (half-open [lower, upper) buckets).
  size_t i = static_cast<size_t>(index);
  return i >= kNumBuckets ? kNumBuckets - 1 : i;
}

double Histogram::Percentile(double p) const {
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Snapshot the buckets first: concurrent Observes may land between
  // loads, so derive the total from this snapshot rather than count_
  // to keep the rank consistent with what we walk.
  std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  // Nearest-rank target (1-based), matching the sorted-vector oracle
  // index min(n-1, floor(n*p)).
  uint64_t target = static_cast<uint64_t>(
      static_cast<double>(total) * p);
  if (target >= total) target = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] > target) {
      // Log-interpolate the rank's position inside the bucket; the
      // edge buckets clamp, so report their inner boundary instead of
      // extrapolating beyond the representable range.
      if (i == 0) return UpperBound(0);
      if (i == kNumBuckets - 1) return LowerBound(i);
      double fraction =
          (static_cast<double>(target - seen) + 0.5) / counts[i];
      double lo = std::log2(LowerBound(i));
      double hi = std::log2(UpperBound(i));
      return std::exp2(lo + (hi - lo) * fraction);
    }
    seen += counts[i];
  }
  return LowerBound(kNumBuckets - 1);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

/// %g-style rendering that never produces locale commas and keeps
/// exposition lines short.
std::string Num(double v) { return StrFormat("%.6g", v); }

}  // namespace

std::string Registry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // std::map iteration is name-sorted, which is what makes repeated
  // renders of identical state byte-identical.
  for (const auto& [name, counter] : counters_) {
    out += StrCat("# TYPE ", name, " counter\n");
    out += StrFormat("%s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StrCat("# TYPE ", name, " gauge\n");
    out += StrFormat("%s %lld\n", name.c_str(),
                     static_cast<long long>(gauge->Value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    out += StrCat("# TYPE ", name, " histogram\n");
    std::vector<uint64_t> counts = histogram->BucketCounts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;  // elide empty buckets
      cumulative += counts[i];
      out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                       Num(Histogram::UpperBound(i)).c_str(),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                     static_cast<unsigned long long>(cumulative));
    out += StrCat(name, "_sum ", Num(histogram->Sum()), "\n");
    out += StrFormat("%s_count %llu\n", name.c_str(),
                     static_cast<unsigned long long>(cumulative));
    out += StrCat(name, "_p50 ", Num(histogram->Percentile(0.5)), "\n");
    out += StrCat(name, "_p90 ", Num(histogram->Percentile(0.9)), "\n");
    out += StrCat(name, "_p99 ", Num(histogram->Percentile(0.99)), "\n");
  }
  return out;
}

std::string Registry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& [name, counter] : counters_) {
    sep();
    out += StrFormat("\"%s\": %llu", name.c_str(),
                     static_cast<unsigned long long>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    sep();
    out += StrFormat("\"%s\": %lld", name.c_str(),
                     static_cast<long long>(gauge->Value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    sep();
    out += StrFormat(
        "\"%s\": {\"count\": %llu, \"sum\": %.3f, \"p50\": %.3f, "
        "\"p90\": %.3f, \"p99\": %.3f}",
        name.c_str(),
        static_cast<unsigned long long>(histogram->Count()),
        histogram->Sum(), histogram->Percentile(0.5),
        histogram->Percentile(0.9), histogram->Percentile(0.99));
  }
  out += "}";
  return out;
}

Registry* Registry::Global() {
  // Leaked on purpose: metrics outlive every static destructor that
  // might still bump a counter on shutdown.
  static Registry* global = new Registry();
  return global;
}

}  // namespace cxml::obs
