#include "cmh/hierarchy.h"

#include "common/strings.h"

namespace cxml::cmh {

ConcurrentHierarchies::ConcurrentHierarchies(std::string root_tag)
    : root_tag_(std::move(root_tag)) {}

Result<HierarchyId> ConcurrentHierarchies::AddHierarchy(std::string name,
                                                        dtd::Dtd dtd) {
  if (FindByName(name) != nullptr) {
    return status::AlreadyExists(
        StrCat("hierarchy '", name, "' already registered"));
  }
  // Vocabulary disjointness (modulo the shared root element).
  for (const auto& [element, decl] : dtd.elements()) {
    (void)decl;
    if (element == root_tag_) continue;
    auto it = element_owner_.find(element);
    if (it != element_owner_.end()) {
      return status::AlreadyExists(StrCat(
          "element '", element, "' already belongs to hierarchy '",
          hierarchies_[it->second].name, "'; hierarchies must partition ",
          "the markup language"));
    }
  }
  HierarchyId id = static_cast<HierarchyId>(hierarchies_.size());
  for (const auto& [element, decl] : dtd.elements()) {
    (void)decl;
    if (element != root_tag_) element_owner_.emplace(element, id);
  }
  Hierarchy h;
  h.id = id;
  h.name = std::move(name);
  h.dtd = std::move(dtd);
  hierarchies_.push_back(std::move(h));
  return id;
}

const Hierarchy* ConcurrentHierarchies::FindByName(
    std::string_view name) const {
  for (const auto& h : hierarchies_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

HierarchyId ConcurrentHierarchies::FindIdByName(std::string_view name) const {
  const Hierarchy* h = FindByName(name);
  return h == nullptr ? kInvalidHierarchy : h->id;
}

HierarchyId ConcurrentHierarchies::HierarchyOf(std::string_view tag) const {
  auto it = element_owner_.find(tag);
  return it == element_owner_.end() ? kInvalidHierarchy : it->second;
}

std::unique_ptr<ConcurrentHierarchies> ConcurrentHierarchies::Clone()
    const {
  return std::unique_ptr<ConcurrentHierarchies>(
      new ConcurrentHierarchies(*this));
}

Result<std::vector<dtd::CompiledDtd>> ConcurrentHierarchies::CompileAll()
    const {
  std::vector<dtd::CompiledDtd> compiled;
  compiled.reserve(hierarchies_.size());
  for (const auto& h : hierarchies_) {
    auto c = dtd::CompiledDtd::Compile(h.dtd);
    if (!c.ok()) {
      return c.status().WithContext(
          StrCat("compiling hierarchy '", h.name, "'"));
    }
    compiled.push_back(std::move(c).value());
  }
  return compiled;
}

}  // namespace cxml::cmh
