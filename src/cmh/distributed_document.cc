#include "cmh/distributed_document.h"

#include "common/strings.h"
#include "dom/traversal.h"
#include "dtd/validator.h"

namespace cxml::cmh {

Result<DistributedDocument> DistributedDocument::Parse(
    const ConcurrentHierarchies& cmh,
    const std::vector<std::string_view>& xml_sources) {
  if (xml_sources.size() != cmh.size()) {
    return status::InvalidArgument(StrFormat(
        "distributed document needs %zu sources (one per hierarchy), got "
        "%zu",
        cmh.size(), xml_sources.size()));
  }
  std::vector<std::unique_ptr<dom::Document>> docs;
  docs.reserve(xml_sources.size());
  for (size_t i = 0; i < xml_sources.size(); ++i) {
    auto doc = dom::ParseDocument(xml_sources[i]);
    if (!doc.ok()) {
      return doc.status().WithContext(StrCat(
          "parsing document of hierarchy '", cmh.hierarchy(
              static_cast<HierarchyId>(i)).name, "'"));
    }
    docs.push_back(std::move(doc).value());
  }
  return Check(cmh, std::move(docs));
}

Result<DistributedDocument> DistributedDocument::Adopt(
    const ConcurrentHierarchies& cmh,
    std::vector<std::unique_ptr<dom::Document>> docs) {
  if (docs.size() != cmh.size()) {
    return status::InvalidArgument(StrFormat(
        "distributed document needs %zu documents, got %zu", cmh.size(),
        docs.size()));
  }
  return Check(cmh, std::move(docs));
}

Result<DistributedDocument> DistributedDocument::Check(
    const ConcurrentHierarchies& cmh,
    std::vector<std::unique_ptr<dom::Document>> docs) {
  DistributedDocument dd;
  dd.cmh_ = &cmh;
  for (size_t i = 0; i < docs.size(); ++i) {
    const HierarchyId h = static_cast<HierarchyId>(i);
    const Hierarchy& hierarchy = cmh.hierarchy(h);
    const dom::Element* root = docs[i]->root();
    if (root == nullptr) {
      return status::InvalidArgument(
          StrCat("document of hierarchy '", hierarchy.name,
                 "' has no root element"));
    }
    if (root->tag() != cmh.root_tag()) {
      return status::ValidationError(StrCat(
          "document of hierarchy '", hierarchy.name, "' has root '",
          root->tag(), "', expected shared root '", cmh.root_tag(), "'"));
    }
    // Content equality.
    std::string content = root->TextContent();
    if (i == 0) {
      dd.content_ = std::move(content);
    } else if (content != dd.content_) {
      return status::ValidationError(StrCat(
          "document of hierarchy '", hierarchy.name,
          "' disagrees on content with hierarchy '", cmh.hierarchy(0).name,
          "' — a distributed document must encode identical content"));
    }
    // Vocabulary membership.
    Status bad;
    dom::Walk(static_cast<const dom::Node*>(root),
              [&](const dom::Node* n) {
                if (!bad.ok()) return false;
                if (n->is_element()) {
                  const auto& el = static_cast<const dom::Element&>(*n);
                  if (el.tag() != cmh.root_tag() &&
                      !hierarchy.Covers(el.tag())) {
                    bad = status::ValidationError(StrCat(
                        "element '", el.tag(), "' is not declared in ",
                        "hierarchy '", hierarchy.name, "'"));
                    return false;
                  }
                }
                return true;
              });
    if (!bad.ok()) return bad;
  }
  dd.docs_ = std::move(docs);
  return dd;
}

Status DistributedDocument::ValidateAll() const {
  for (size_t i = 0; i < docs_.size(); ++i) {
    const Hierarchy& hierarchy = cmh_->hierarchy(static_cast<HierarchyId>(i));
    auto compiled = dtd::CompiledDtd::Compile(hierarchy.dtd);
    if (!compiled.ok()) {
      return compiled.status().WithContext(
          StrCat("compiling DTD of hierarchy '", hierarchy.name, "'"));
    }
    dtd::DtdValidator validator(*compiled);
    Status st = validator.Check(*docs_[i], cmh_->root_tag());
    if (!st.ok()) {
      return st.WithContext(
          StrCat("validating hierarchy '", hierarchy.name, "'"));
    }
  }
  return Status::Ok();
}

}  // namespace cxml::cmh
