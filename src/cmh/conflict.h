#ifndef CXML_CMH_CONFLICT_H_
#define CXML_CMH_CONFLICT_H_

#include <string>
#include <vector>

#include "common/interval.h"
#include "common/result.h"
#include "dom/document.h"

namespace cxml::cmh {

/// The character extent of one element instance within a document's
/// content (offsets count text characters only — markup is transparent).
struct ElementExtent {
  const dom::Element* element = nullptr;
  std::string tag;
  Interval chars;
};

/// Computes the extent of every element in `doc` in document order.
/// Comments and processing instructions contribute no characters.
std::vector<ElementExtent> ComputeExtents(const dom::Document& doc);

/// A pair of element *types* observed to conflict: some instance of
/// `tag_a` properly overlaps some instance of `tag_b`.
struct TagConflict {
  std::string tag_a;
  std::string tag_b;
  /// How many instance pairs overlap.
  size_t instance_count = 0;
};

/// Scans instance extents for proper overlaps between different tags
/// (sweep over interval endpoints, O(n log n + k)).
std::vector<TagConflict> FindTagConflicts(
    const std::vector<ElementExtent>& extents);

/// Partitions tags into hierarchies such that no two tags observed to
/// conflict share a hierarchy — the paper's "group non-conflicting tag
/// elements into separate DTDs", computed by greedy colouring of the
/// conflict graph (tags in first-seen order). Returns, per hierarchy,
/// the list of tags assigned to it.
std::vector<std::vector<std::string>> PartitionIntoHierarchies(
    const std::vector<std::string>& tags,
    const std::vector<TagConflict>& conflicts);

}  // namespace cxml::cmh

#endif  // CXML_CMH_CONFLICT_H_
