#ifndef CXML_CMH_DISTRIBUTED_DOCUMENT_H_
#define CXML_CMH_DISTRIBUTED_DOCUMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cmh/hierarchy.h"
#include "common/result.h"
#include "dom/document.h"

namespace cxml::cmh {

/// The paper's *distributed document* (§3): "a virtual union of XML
/// documents (one document corresponds to a DTD in the CMH) that have the
/// same content, the same root element, and that are encoded with elements
/// from the corresponding DTD."
///
/// Holds one DOM document per hierarchy plus the shared content string.
/// Construction enforces the three union conditions; GODDAG construction
/// (goddag/builder.h, sacx/) consumes this type.
class DistributedDocument {
 public:
  /// Parses one XML source per hierarchy of `cmh` (same order) and checks:
  ///  * every document is well-formed,
  ///  * all roots carry `cmh.root_tag()`,
  ///  * all documents have byte-identical text content,
  ///  * every element of document `i` is the root tag or declared in
  ///    hierarchy `i`.
  /// `cmh` must outlive the result.
  static Result<DistributedDocument> Parse(
      const ConcurrentHierarchies& cmh,
      const std::vector<std::string_view>& xml_sources);

  /// Adopts already-built DOM documents (used by drivers); performs the
  /// same consistency checks.
  static Result<DistributedDocument> Adopt(
      const ConcurrentHierarchies& cmh,
      std::vector<std::unique_ptr<dom::Document>> docs);

  const ConcurrentHierarchies& cmh() const { return *cmh_; }
  /// The shared character content (markup-free).
  const std::string& content() const { return content_; }
  size_t size() const { return docs_.size(); }
  const dom::Document& document(HierarchyId id) const { return *docs_[id]; }
  dom::Document& document(HierarchyId id) { return *docs_[id]; }

  /// Validates every per-hierarchy document against its DTD.
  Status ValidateAll() const;

 private:
  DistributedDocument() = default;

  static Result<DistributedDocument> Check(
      const ConcurrentHierarchies& cmh,
      std::vector<std::unique_ptr<dom::Document>> docs);

  const ConcurrentHierarchies* cmh_ = nullptr;
  std::string content_;
  std::vector<std::unique_ptr<dom::Document>> docs_;
};

}  // namespace cxml::cmh

#endif  // CXML_CMH_DISTRIBUTED_DOCUMENT_H_
