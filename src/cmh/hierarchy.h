#ifndef CXML_CMH_HIERARCHY_H_
#define CXML_CMH_HIERARCHY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dtd/dtd.h"

namespace cxml::cmh {

/// Dense identifier of a hierarchy within one ConcurrentHierarchies set.
using HierarchyId = uint32_t;
inline constexpr HierarchyId kInvalidHierarchy =
    static_cast<HierarchyId>(-1);

/// One markup hierarchy: a named DTD whose element types have "a clear
/// nested structure" (paper §2). E.g. the *physical* hierarchy
/// (page, line) vs the *linguistic* hierarchy (sentence, phrase, word).
struct Hierarchy {
  HierarchyId id = kInvalidHierarchy;
  std::string name;
  dtd::Dtd dtd;

  /// True iff `tag` is declared in this hierarchy's DTD.
  bool Covers(std::string_view tag) const { return dtd.HasElement(tag); }
};

/// A concurrent markup hierarchy (paper §3): "a collection of DTD
/// elements that are not in conflict with each other", here modelled as a
/// set of named DTDs with pairwise-disjoint element vocabularies, all
/// sharing a single root element tag.
class ConcurrentHierarchies {
 public:
  /// `root_tag` is the element shared by every hierarchy's documents
  /// (`<r>` throughout the paper's figures).
  explicit ConcurrentHierarchies(std::string root_tag);

  // Moves stay available (Result/unique_ptr plumbing); copies only
  // through the explicit Clone() below.
  ConcurrentHierarchies(ConcurrentHierarchies&&) = default;
  ConcurrentHierarchies& operator=(ConcurrentHierarchies&&) = default;

  const std::string& root_tag() const { return root_tag_; }

  /// Registers a hierarchy. Fails when the name is taken or when any
  /// non-root element of `dtd` is already claimed by another hierarchy
  /// (vocabularies must partition the markup language).
  Result<HierarchyId> AddHierarchy(std::string name, dtd::Dtd dtd);

  size_t size() const { return hierarchies_.size(); }
  const Hierarchy& hierarchy(HierarchyId id) const {
    return hierarchies_[id];
  }
  const std::vector<Hierarchy>& hierarchies() const { return hierarchies_; }

  /// Finds a hierarchy by name; nullptr when absent.
  const Hierarchy* FindByName(std::string_view name) const;
  /// Id by name, or kInvalidHierarchy.
  HierarchyId FindIdByName(std::string_view name) const;

  /// The hierarchy owning element `tag`, or kInvalidHierarchy (the root
  /// tag belongs to all hierarchies and also returns kInvalidHierarchy —
  /// use `is_root_tag`).
  HierarchyId HierarchyOf(std::string_view tag) const;
  bool is_root_tag(std::string_view tag) const { return tag == root_tag_; }

  /// Compiles every hierarchy's DTD (validation + prevalidation automata).
  /// The returned object references this instance; keep it alive.
  Result<std::vector<dtd::CompiledDtd>> CompileAll() const;

  /// Deep copy of the registry: names, DTD vocabularies (content
  /// models, attribute lists, entities), and the element-owner index.
  /// The clone is self-contained — nothing points back into this
  /// instance — so it can outlive it; the structural storage::Clone
  /// hands one to each private working copy alongside
  /// goddag::Goddag::Clone.
  std::unique_ptr<ConcurrentHierarchies> Clone() const;

 private:
  /// Memberwise copy behind Clone(): every member is a value type, so
  /// the default copy is already deep. Kept private so copies only
  /// arise through the explicit, unique_ptr-returning Clone().
  ConcurrentHierarchies(const ConcurrentHierarchies&) = default;

  std::string root_tag_;
  std::vector<Hierarchy> hierarchies_;
  /// element tag -> owning hierarchy (root tag excluded).
  std::map<std::string, HierarchyId, std::less<>> element_owner_;
};

}  // namespace cxml::cmh

#endif  // CXML_CMH_HIERARCHY_H_
