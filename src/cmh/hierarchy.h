#ifndef CXML_CMH_HIERARCHY_H_
#define CXML_CMH_HIERARCHY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dtd/dtd.h"

namespace cxml::cmh {

/// Dense identifier of a hierarchy within one ConcurrentHierarchies set.
using HierarchyId = uint32_t;
inline constexpr HierarchyId kInvalidHierarchy =
    static_cast<HierarchyId>(-1);

/// One markup hierarchy: a named DTD whose element types have "a clear
/// nested structure" (paper §2). E.g. the *physical* hierarchy
/// (page, line) vs the *linguistic* hierarchy (sentence, phrase, word).
struct Hierarchy {
  HierarchyId id = kInvalidHierarchy;
  std::string name;
  dtd::Dtd dtd;

  /// True iff `tag` is declared in this hierarchy's DTD.
  bool Covers(std::string_view tag) const { return dtd.HasElement(tag); }
};

/// A concurrent markup hierarchy (paper §3): "a collection of DTD
/// elements that are not in conflict with each other", here modelled as a
/// set of named DTDs with pairwise-disjoint element vocabularies, all
/// sharing a single root element tag.
class ConcurrentHierarchies {
 public:
  /// `root_tag` is the element shared by every hierarchy's documents
  /// (`<r>` throughout the paper's figures).
  explicit ConcurrentHierarchies(std::string root_tag);

  const std::string& root_tag() const { return root_tag_; }

  /// Registers a hierarchy. Fails when the name is taken or when any
  /// non-root element of `dtd` is already claimed by another hierarchy
  /// (vocabularies must partition the markup language).
  Result<HierarchyId> AddHierarchy(std::string name, dtd::Dtd dtd);

  size_t size() const { return hierarchies_.size(); }
  const Hierarchy& hierarchy(HierarchyId id) const {
    return hierarchies_[id];
  }
  const std::vector<Hierarchy>& hierarchies() const { return hierarchies_; }

  /// Finds a hierarchy by name; nullptr when absent.
  const Hierarchy* FindByName(std::string_view name) const;
  /// Id by name, or kInvalidHierarchy.
  HierarchyId FindIdByName(std::string_view name) const;

  /// The hierarchy owning element `tag`, or kInvalidHierarchy (the root
  /// tag belongs to all hierarchies and also returns kInvalidHierarchy —
  /// use `is_root_tag`).
  HierarchyId HierarchyOf(std::string_view tag) const;
  bool is_root_tag(std::string_view tag) const { return tag == root_tag_; }

  /// Compiles every hierarchy's DTD (validation + prevalidation automata).
  /// The returned object references this instance; keep it alive.
  Result<std::vector<dtd::CompiledDtd>> CompileAll() const;

 private:
  std::string root_tag_;
  std::vector<Hierarchy> hierarchies_;
  /// element tag -> owning hierarchy (root tag excluded).
  std::map<std::string, HierarchyId, std::less<>> element_owner_;
};

}  // namespace cxml::cmh

#endif  // CXML_CMH_HIERARCHY_H_
