#include "cmh/conflict.h"

#include <algorithm>
#include <map>
#include <set>

namespace cxml::cmh {

namespace {

size_t WalkExtents(const dom::Node& node, size_t offset,
                   std::vector<ElementExtent>* out) {
  if (node.kind() == dom::NodeKind::kText) {
    return offset + static_cast<const dom::Text&>(node).text().size();
  }
  if (node.is_element()) {
    const auto& el = static_cast<const dom::Element&>(node);
    size_t index = out->size();
    out->push_back({&el, el.tag(), Interval(offset, offset)});
    size_t end = offset;
    for (const dom::Node* child : el.children()) {
      end = WalkExtents(*child, end, out);
    }
    (*out)[index].chars.end = end;
    return end;
  }
  // Document node: recurse; comments/PIs contribute nothing.
  size_t end = offset;
  for (const dom::Node* child : node.children()) {
    end = WalkExtents(*child, end, out);
  }
  return end;
}

}  // namespace

std::vector<ElementExtent> ComputeExtents(const dom::Document& doc) {
  std::vector<ElementExtent> out;
  WalkExtents(doc, 0, &out);
  return out;
}

std::vector<TagConflict> FindTagConflicts(
    const std::vector<ElementExtent>& extents) {
  // Sweep: sort by start; keep an active set ordered by end.
  struct Item {
    Interval chars;
    size_t index;
  };
  std::vector<Item> items;
  items.reserve(extents.size());
  for (size_t i = 0; i < extents.size(); ++i) {
    items.push_back({extents[i].chars, i});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.chars.begin != b.chars.begin) return a.chars.begin < b.chars.begin;
    return a.chars.end > b.chars.end;
  });

  std::map<std::pair<std::string, std::string>, size_t> pair_counts;
  std::vector<Item> active;  // all items whose end > current start
  for (const Item& item : items) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](const Item& a) {
                                  return a.chars.end <= item.chars.begin;
                                }),
                 active.end());
    for (const Item& a : active) {
      if (a.chars.Overlaps(item.chars)) {
        const std::string& ta = extents[a.index].tag;
        const std::string& tb = extents[item.index].tag;
        auto key = ta < tb ? std::make_pair(ta, tb) : std::make_pair(tb, ta);
        ++pair_counts[key];
      }
    }
    active.push_back(item);
  }

  std::vector<TagConflict> out;
  out.reserve(pair_counts.size());
  for (const auto& [key, count] : pair_counts) {
    out.push_back({key.first, key.second, count});
  }
  return out;
}

std::vector<std::vector<std::string>> PartitionIntoHierarchies(
    const std::vector<std::string>& tags,
    const std::vector<TagConflict>& conflicts) {
  std::map<std::string, std::set<std::string>> adjacency;
  for (const auto& c : conflicts) {
    adjacency[c.tag_a].insert(c.tag_b);
    adjacency[c.tag_b].insert(c.tag_a);
  }
  std::vector<std::vector<std::string>> groups;
  for (const std::string& tag : tags) {
    bool placed = false;
    for (auto& group : groups) {
      bool conflicts_with_group = false;
      const auto it = adjacency.find(tag);
      if (it != adjacency.end()) {
        for (const std::string& member : group) {
          if (it->second.count(member) != 0) {
            conflicts_with_group = true;
            break;
          }
        }
      }
      if (!conflicts_with_group) {
        group.push_back(tag);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({tag});
  }
  return groups;
}

}  // namespace cxml::cmh
