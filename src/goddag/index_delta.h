#ifndef CXML_GODDAG_INDEX_DELTA_H_
#define CXML_GODDAG_INDEX_DELTA_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "goddag/goddag.h"

namespace cxml::goddag {

/// An advisory summary of the structural edits applied to a GODDAG
/// clone since it branched from a published snapshot — the hint that
/// rides from edit::Editor through DocumentStore::Publish into the
/// successor snapshot so SnapshotIndex::Patch can be attempted.
///
/// The delta is *advisory*: Patch derives the authoritative touched
/// set from the arena diff between the predecessor index and the new
/// GODDAG (NodeIds survive Goddag::Clone verbatim, so the arenas
/// correspond position-for-position). What the delta contributes is
/// **provenance** — its presence asserts the new GODDAG is a clone of
/// the snapshot the predecessor index was built over, which is exactly
/// the precondition the arena diff needs — plus the `wide` flag that
/// lets the editor veto patching early for bulk rewrites, and the
/// recorded ids/keys for observability. Publishes with no delta
/// (Register, crash recovery, opaque kSnapshot applies) take the full
/// rebuild path by construction.
struct IndexDelta {
  /// Node ids the editor touched (inserted, removed, re-inserted by
  /// undo/redo). Capped at kWideCap; past it only `wide` is kept.
  std::vector<NodeId> touched;
  /// (hierarchy, tag) pool keys the touched elements dirtied.
  std::vector<std::pair<HierarchyId, std::string>> dirty_tags;
  /// Any leaf-layer change (boundary splits under insertion).
  bool leaves_dirty = false;
  /// Set when the edit is too broad to be worth patching (or past
  /// kWideCap): Patch refuses immediately and the snapshot rebuilds.
  bool wide = false;
  /// Structural operations recorded (inserts + removes, not attrs).
  size_t ops = 0;

  /// Past this many touched ids the per-pool bookkeeping cannot beat a
  /// full rebuild; recording stops and `wide` is set.
  static constexpr size_t kWideCap = 4096;

  void Touch(NodeId node, HierarchyId h, const std::string& tag) {
    ++ops;
    leaves_dirty = true;  // boundary leaf splits ride every insert/remove
    if (wide) return;
    if (touched.size() >= kWideCap) {
      wide = true;
      touched.clear();
      touched.shrink_to_fit();
      dirty_tags.clear();
      return;
    }
    touched.push_back(node);
    dirty_tags.emplace_back(h, tag);
  }

  void Clear() {
    touched.clear();
    dirty_tags.clear();
    leaves_dirty = false;
    wide = false;
    ops = 0;
  }

  /// Folds `other` in (composing deltas across an unbuilt intermediate
  /// version). Width saturates: once either side is wide, the merge is.
  void Merge(const IndexDelta& other) {
    ops += other.ops;
    leaves_dirty = leaves_dirty || other.leaves_dirty;
    if (wide || other.wide ||
        touched.size() + other.touched.size() > kWideCap) {
      wide = true;
      touched.clear();
      touched.shrink_to_fit();
      dirty_tags.clear();
      return;
    }
    touched.insert(touched.end(), other.touched.begin(),
                   other.touched.end());
    dirty_tags.insert(dirty_tags.end(), other.dirty_tags.begin(),
                      other.dirty_tags.end());
  }
};

}  // namespace cxml::goddag

#endif  // CXML_GODDAG_INDEX_DELTA_H_
