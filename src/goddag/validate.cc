// Structural invariant checker for GODDAGs (Goddag::Validate, invariants
// I1–I5 in goddag.h). Run after construction and mutation in tests and
// by the editor in paranoid mode.

#include <vector>

#include "common/strings.h"
#include "goddag/goddag.h"

namespace cxml::goddag {

namespace {

Status CheckSubtree(const Goddag& g, HierarchyId h, NodeId node,
                    NodeId expected_parent,
                    std::vector<int>* leaf_seen) {
  if (g.is_leaf(node)) {
    if (g.leaf_parent(node, h) != expected_parent) {
      return status::Internal(StrFormat(
          "I3: leaf %u parent in hierarchy %u is %u, expected %u", node, h,
          g.leaf_parent(node, h), expected_parent));
    }
    size_t index = g.leaf_index(node);
    if (++(*leaf_seen)[index] > 1) {
      return status::Internal(StrFormat(
          "I3: leaf %u appears twice in hierarchy %u", node, h));
    }
    return Status::Ok();
  }
  if (!g.is_element(node)) {
    return status::Internal(
        StrFormat("I3: root node %u appears as a child", node));
  }
  if (g.hierarchy(node) != h) {
    return status::Internal(StrFormat(
        "I3: element %u of hierarchy %u reached from hierarchy %u", node,
        g.hierarchy(node), h));
  }
  if (g.parent(node) != expected_parent) {
    return status::Internal(StrFormat(
        "I3: element %u parent is %u, expected %u", node, g.parent(node),
        expected_parent));
  }
  // I4: children tile the element's extent, in order.
  size_t cursor = g.char_range(node).begin;
  for (NodeId child : g.children(node)) {
    Interval ci = g.char_range(child);
    if (ci.begin != cursor) {
      return status::Internal(StrFormat(
          "I4: child %u of element %u starts at %zu, expected %zu", child,
          node, ci.begin, cursor));
    }
    cursor = ci.end;
    CXML_RETURN_IF_ERROR(CheckSubtree(g, h, child, node, leaf_seen));
  }
  if (cursor != g.char_range(node).end) {
    return status::Internal(StrFormat(
        "I4: children of element %u end at %zu, expected %zu", node, cursor,
        g.char_range(node).end));
  }
  // I5: vocabulary membership.
  if (g.cmh() != nullptr &&
      !g.cmh()->hierarchy(h).Covers(g.tag(node))) {
    return status::Internal(
        StrCat("I5: element '", g.tag(node), "' not declared in hierarchy '",
               g.cmh()->hierarchy(h).name, "'"));
  }
  return Status::Ok();
}

}  // namespace

Status Goddag::Validate() const {
  // I1: the leaf layer partitions [0, |content|).
  size_t cursor = 0;
  for (size_t i = 0; i < leaves_.size(); ++i) {
    NodeId leaf = leaves_[i];
    if (!is_leaf(leaf)) {
      return status::Internal(
          StrFormat("I1: node %u in leaf list is not a leaf", leaf));
    }
    const Interval& iv = chars_[leaf];
    if (iv.begin != cursor) {
      return status::Internal(StrFormat(
          "I1: leaf %zu begins at %zu, expected %zu", i, iv.begin, cursor));
    }
    if (iv.empty()) {
      return status::Internal(StrFormat("I1: leaf %zu is empty", i));
    }
    if (leaf_index_[leaf] != i) {
      return status::Internal(StrFormat(
          "I1: leaf %zu has stale index %zu", i, leaf_index_[leaf]));
    }
    cursor = iv.end;
  }
  if (cursor != content_.size()) {
    return status::Internal(StrFormat(
        "I1: leaves cover [0,%zu), content has size %zu", cursor,
        content_.size()));
  }

  // I2 is implied by I4 (contiguous tiling) + I1, but check leaf ranges
  // of every attached element cheaply via LeavesCovering consistency.
  // I3/I4/I5: per-hierarchy tree walks; every leaf must be seen exactly
  // once per hierarchy.
  for (HierarchyId h = 0; h < num_hierarchies_; ++h) {
    std::vector<int> leaf_seen(leaves_.size(), 0);
    size_t root_cursor = 0;
    for (NodeId child : root_children_[h]) {
      Interval ci = chars_[child];
      if (ci.begin != root_cursor) {
        return status::Internal(StrFormat(
            "I4: root child %u of hierarchy %u starts at %zu, expected %zu",
            child, h, ci.begin, root_cursor));
      }
      root_cursor = ci.end;
      CXML_RETURN_IF_ERROR(CheckSubtree(*this, h, child, root_, &leaf_seen));
    }
    if (root_cursor != content_.size()) {
      return status::Internal(StrFormat(
          "I4: hierarchy %u root children end at %zu, expected %zu", h,
          root_cursor, content_.size()));
    }
    for (size_t i = 0; i < leaf_seen.size(); ++i) {
      if (leaf_seen[i] != 1) {
        return status::Internal(StrFormat(
            "I3: leaf %zu seen %d times in hierarchy %u", i, leaf_seen[i],
            h));
      }
    }
  }
  return Status::Ok();
}

}  // namespace cxml::goddag
