#include "goddag/goddag.h"

#include <algorithm>

#include "common/strings.h"

namespace cxml::goddag {

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kRoot:
      return "Root";
    case NodeKind::kElement:
      return "Element";
    case NodeKind::kLeaf:
      return "Leaf";
  }
  return "Unknown";
}

Goddag::Goddag(std::string content, size_t num_hierarchies,
               std::string root_tag)
    : content_(std::move(content)), num_hierarchies_(num_hierarchies) {
  root_ = AllocNode(NodeKind::kRoot);
  tag_[root_] = std::move(root_tag);
  chars_[root_] = Interval(0, content_.size());
  root_children_.resize(num_hierarchies_);
  if (!content_.empty()) {
    NodeId leaf = AllocNode(NodeKind::kLeaf);
    chars_[leaf] = Interval(0, content_.size());
    leaf_index_[leaf] = 0;
    leaf_parents_[leaf].assign(num_hierarchies_, root_);
    leaves_.push_back(leaf);
    for (auto& rc : root_children_) rc.push_back(leaf);
  }
}

NodeId Goddag::AllocNode(NodeKind kind) {
  NodeId id = static_cast<NodeId>(kind_.size());
  kind_.push_back(kind);
  tag_.emplace_back();
  hierarchy_.push_back(kInvalidHierarchy);
  attrs_.emplace_back();
  parent_.push_back(kInvalidNode);
  children_.emplace_back();
  chars_.emplace_back();
  leaf_index_.push_back(0);
  leaf_parents_.emplace_back();
  return id;
}

const std::string* Goddag::FindAttribute(NodeId node,
                                         std::string_view name) const {
  for (const auto& a : attrs_[node]) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

void Goddag::SetAttribute(NodeId node, std::string_view name,
                          std::string_view value) {
  for (auto& a : attrs_[node]) {
    if (a.name == name) {
      a.value = std::string(value);
      return;
    }
  }
  attrs_[node].push_back({std::string(name), std::string(value)});
}

void Goddag::RemoveAttribute(NodeId node, std::string_view name) {
  auto& attrs = attrs_[node];
  attrs.erase(std::remove_if(attrs.begin(), attrs.end(),
                             [&](const xml::Attribute& a) {
                               return a.name == name;
                             }),
              attrs.end());
}

Interval Goddag::char_range(NodeId node) const { return chars_[node]; }

Interval Goddag::leaf_range(NodeId node) const {
  if (is_leaf(node)) {
    size_t i = leaf_index_[node];
    return Interval(i, i + 1);
  }
  return LeavesCovering(chars_[node]);
}

std::string_view Goddag::text(NodeId node) const {
  const Interval& iv = chars_[node];
  return std::string_view(content_).substr(iv.begin, iv.length());
}

NodeId Goddag::leaf_parent(NodeId leaf, HierarchyId h) const {
  return leaf_parents_[leaf][h];
}

NodeId Goddag::parent_in(NodeId node, HierarchyId h) const {
  switch (kind_[node]) {
    case NodeKind::kRoot:
      return kInvalidNode;
    case NodeKind::kElement:
      return hierarchy_[node] == h ? parent_[node] : kInvalidNode;
    case NodeKind::kLeaf:
      return leaf_parents_[node][h];
  }
  return kInvalidNode;
}

size_t Goddag::LeafIndexAtOffset(size_t offset) const {
  // First leaf whose end exceeds offset.
  size_t lo = 0, hi = leaves_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (chars_[leaves_[mid]].end <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Interval Goddag::LeavesCovering(const Interval& chars) const {
  if (leaves_.empty()) return Interval(0, 0);
  if (chars.empty()) {
    // First leaf starting at or after the position.
    size_t i = LeafIndexAtOffset(chars.begin);
    if (i < leaves_.size() && chars_[leaves_[i]].begin < chars.begin) ++i;
    return Interval(i, i);
  }
  size_t first = LeafIndexAtOffset(chars.begin);
  size_t last = LeafIndexAtOffset(chars.end - 1);
  return Interval(first, std::min(last + 1, leaves_.size()));
}

void Goddag::RenumberLeaves() {
  for (size_t i = 0; i < leaves_.size(); ++i) leaf_index_[leaves_[i]] = i;
}

namespace {

void CollectPreorder(const Goddag& g, NodeId node, std::vector<NodeId>* out) {
  if (!g.is_element(node)) return;
  out->push_back(node);
  for (NodeId child : g.children(node)) CollectPreorder(g, child, out);
}

}  // namespace

std::vector<NodeId> Goddag::ElementsOf(HierarchyId h) const {
  std::vector<NodeId> out;
  for (NodeId child : root_children_[h]) CollectPreorder(*this, child, &out);
  return out;
}

std::vector<NodeId> Goddag::AllElements() const {
  std::vector<NodeId> out;
  for (HierarchyId h = 0; h < num_hierarchies_; ++h) {
    for (NodeId child : root_children_[h]) {
      CollectPreorder(*this, child, &out);
    }
  }
  SortDocumentOrder(&out);
  return out;
}

std::vector<NodeId> Goddag::ElementsByTag(std::string_view tag,
                                          HierarchyId h) const {
  std::vector<NodeId> out;
  if (h != kInvalidHierarchy) {
    for (NodeId node : ElementsOf(h)) {
      if (tag_[node] == tag) out.push_back(node);
    }
    return out;
  }
  for (NodeId node : AllElements()) {
    if (tag_[node] == tag) out.push_back(node);
  }
  return out;
}

bool Goddag::Before(NodeId a, NodeId b) const {
  if (a == b) return false;
  const Interval& ia = chars_[a];
  const Interval& ib = chars_[b];
  if (ia.begin != ib.begin) return ia.begin < ib.begin;
  if (ia.end != ib.end) return ia.end > ib.end;  // container first
  auto rank = [&](NodeId n) -> int {
    switch (kind_[n]) {
      case NodeKind::kRoot:
        return 0;
      case NodeKind::kElement:
        return 1;
      case NodeKind::kLeaf:
        return 2;
    }
    return 3;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b);
  if (hierarchy_[a] != hierarchy_[b]) return hierarchy_[a] < hierarchy_[b];
  return a < b;
}

Goddag Goddag::Clone(const cmh::ConcurrentHierarchies* cmh) const {
  Goddag copy(*this);
  if (cmh != nullptr) copy.cmh_ = cmh;
  return copy;
}

void Goddag::SortDocumentOrder(std::vector<NodeId>* nodes) const {
  std::sort(nodes->begin(), nodes->end(),
            [this](NodeId a, NodeId b) { return Before(a, b); });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace cxml::goddag
