// Mutation operations of the GODDAG (declared in goddag.h): leaf
// splitting, element insertion over a character range, and element
// removal. These are the primitives the xTagger-style editor (edit/)
// builds on.

#include <algorithm>

#include "common/strings.h"
#include "goddag/goddag.h"

namespace cxml::goddag {

namespace {

/// Finds `needle` in `vec` and returns its index, or npos.
size_t IndexOf(const std::vector<NodeId>& vec, NodeId needle) {
  for (size_t i = 0; i < vec.size(); ++i) {
    if (vec[i] == needle) return i;
  }
  return static_cast<size_t>(-1);
}

}  // namespace

Result<NodeId> Goddag::SplitLeafAt(size_t offset) {
  if (offset == 0 || offset >= content_.size()) {
    return status::OutOfRange(StrFormat(
        "split offset %zu outside (0, %zu)", offset, content_.size()));
  }
  size_t i = LeafIndexAtOffset(offset);
  NodeId left = leaves_[i];
  if (chars_[left].begin == offset) return left;  // already a boundary

  // Shrink the left leaf, create the right leaf.
  Interval old = chars_[left];
  chars_[left] = Interval(old.begin, offset);
  NodeId right = AllocNode(NodeKind::kLeaf);
  chars_[right] = Interval(offset, old.end);
  leaf_parents_[right] = leaf_parents_[left];
  leaves_.insert(leaves_.begin() + static_cast<ptrdiff_t>(i) + 1, right);
  RenumberLeaves();

  // Register the right leaf as a sibling immediately after the left one
  // in every hierarchy's parent.
  for (HierarchyId h = 0; h < num_hierarchies_; ++h) {
    NodeId p = leaf_parents_[left][h];
    std::vector<NodeId>& siblings =
        (p == root_) ? root_children_[h] : children_[p];
    size_t at = IndexOf(siblings, left);
    if (at == static_cast<size_t>(-1)) {
      return status::Internal(
          "leaf missing from its parent's child list during split");
    }
    siblings.insert(siblings.begin() + static_cast<ptrdiff_t>(at) + 1,
                    right);
  }
  return right;
}

Result<NodeId> Goddag::InsertElement(HierarchyId h, std::string_view tag,
                                     std::vector<xml::Attribute> attrs,
                                     const Interval& chars) {
  if (h >= num_hierarchies_) {
    return status::InvalidArgument(
        StrFormat("hierarchy %u out of range", h));
  }
  if (chars.begin > chars.end || chars.end > content_.size()) {
    return status::OutOfRange(StrFormat(
        "character range [%zu,%zu) outside content of size %zu", chars.begin,
        chars.end, content_.size()));
  }
  if (cmh_ != nullptr && !cmh_->hierarchy(h).Covers(tag)) {
    return status::ValidationError(
        StrCat("element '", std::string(tag), "' is not declared in ",
               "hierarchy '", cmh_->hierarchy(h).name, "'"));
  }

  // Align the range with the leaf partition.
  if (chars.begin > 0 && chars.begin < content_.size()) {
    CXML_RETURN_IF_ERROR(SplitLeafAt(chars.begin).status());
  }
  if (chars.end > 0 && chars.end < content_.size()) {
    CXML_RETURN_IF_ERROR(SplitLeafAt(chars.end).status());
  }
  Interval leaf_span = LeavesCovering(chars);

  // Locate the would-be parent: the innermost node of hierarchy `h` whose
  // extent contains `chars`.
  NodeId parent = root_;
  if (!leaves_.empty()) {
    size_t probe_index =
        leaf_span.empty()
            ? (leaf_span.begin < leaves_.size() ? leaf_span.begin
                                                : leaves_.size() - 1)
            : leaf_span.begin;
    NodeId candidate = leaf_parents_[leaves_[probe_index]][h];
    while (candidate != root_ && !chars_[candidate].Contains(chars)) {
      candidate = parent_[candidate];
    }
    parent = candidate;
  }

  // Allocate the node FIRST: AllocNode grows the arena vectors, which
  // would invalidate the `siblings` reference taken below. (On a later
  // error return the node stays detached in the arena — harmless.)
  NodeId node = AllocNode(NodeKind::kElement);

  // The covered children must form a contiguous, *whole* slice: an
  // existing same-hierarchy element straddling the boundary would make
  // the hierarchy non-well-formed.
  std::vector<NodeId>& siblings =
      (parent == root_) ? root_children_[h] : children_[parent];
  size_t slice_begin = siblings.size();
  size_t slice_end = siblings.size();
  for (size_t i = 0; i < siblings.size(); ++i) {
    const Interval& ci = chars_[siblings[i]];
    if (ci.Overlaps(chars)) {
      return status::FailedPrecondition(StrCat(
          "inserting '", std::string(tag), "' over [",
          StrFormat("%zu,%zu", chars.begin, chars.end), ") would overlap ",
          "element '", tag_[siblings[i]],
          "' of the same hierarchy — within a hierarchy markup must nest"));
    }
    // Non-empty children are covered when fully contained; zero-width
    // children (milestones) only when strictly inside — a milestone at
    // either boundary deterministically stays outside the new element.
    bool covered =
        !chars.empty() &&
        (ci.empty() ? (chars.begin < ci.begin && ci.begin < chars.end)
                    : chars.Contains(ci));
    if (covered) {
      if (slice_begin == siblings.size()) slice_begin = i;
      slice_end = i + 1;
    }
  }
  if (slice_begin == siblings.size()) {
    // Empty new element (milestone) or no covered children: insert at the
    // first position whose child starts at/after chars.begin.
    slice_begin = 0;
    while (slice_begin < siblings.size() &&
           chars_[siblings[slice_begin]].end <= chars.begin) {
      ++slice_begin;
    }
    // A non-empty child starting before chars.begin and containing it
    // would have been the parent instead, so this position is correct.
    slice_end = slice_begin;
  }

  tag_[node] = std::string(tag);
  hierarchy_[node] = h;
  attrs_[node] = std::move(attrs);
  parent_[node] = parent;
  chars_[node] = chars;
  children_[node].assign(
      siblings.begin() + static_cast<ptrdiff_t>(slice_begin),
      siblings.begin() + static_cast<ptrdiff_t>(slice_end));
  for (NodeId child : children_[node]) {
    if (is_leaf(child)) {
      leaf_parents_[child][h] = node;
    } else {
      parent_[child] = node;
    }
  }
  siblings.erase(siblings.begin() + static_cast<ptrdiff_t>(slice_begin),
                 siblings.begin() + static_cast<ptrdiff_t>(slice_end));
  siblings.insert(siblings.begin() + static_cast<ptrdiff_t>(slice_begin),
                  node);
  return node;
}

Status Goddag::RemoveElement(NodeId element) {
  if (element >= kind_.size() || !is_element(element)) {
    return status::InvalidArgument("RemoveElement expects an element node");
  }
  NodeId parent = parent_[element];
  if (parent == kInvalidNode) {
    return status::FailedPrecondition("element is already detached");
  }
  HierarchyId h = hierarchy_[element];
  std::vector<NodeId>& siblings =
      (parent == root_) ? root_children_[h] : children_[parent];
  size_t at = IndexOf(siblings, element);
  if (at == static_cast<size_t>(-1)) {
    return status::Internal("element missing from its parent's child list");
  }
  // Splice children into the parent at the element's position.
  std::vector<NodeId> kids = std::move(children_[element]);
  children_[element].clear();
  siblings.erase(siblings.begin() + static_cast<ptrdiff_t>(at));
  siblings.insert(siblings.begin() + static_cast<ptrdiff_t>(at),
                  kids.begin(), kids.end());
  for (NodeId child : kids) {
    if (is_leaf(child)) {
      leaf_parents_[child][h] = parent;
    } else {
      parent_[child] = parent;
    }
  }
  parent_[element] = kInvalidNode;
  return Status::Ok();
}


namespace {

/// Position remapping for DeleteText: positions inside [d1,d2) collapse
/// to d1, later positions shift left.
size_t MapDeleted(size_t x, size_t d1, size_t d2) {
  if (x <= d1) return x;
  if (x >= d2) return x - (d2 - d1);
  return d1;
}

}  // namespace

Status Goddag::InsertText(size_t offset, std::string_view text) {
  if (offset > content_.size()) {
    return status::OutOfRange(StrFormat(
        "insert offset %zu outside content of size %zu", offset,
        content_.size()));
  }
  if (text.empty()) return Status::Ok();

  if (leaves_.empty()) {
    // Empty document: create the first leaf under every root list.
    content_.append(text);
    NodeId leaf = AllocNode(NodeKind::kLeaf);
    chars_[leaf] = Interval(0, content_.size());
    leaf_parents_[leaf].assign(num_hierarchies_, root_);
    leaves_.push_back(leaf);
    for (auto& rc : root_children_) rc.push_back(leaf);
    RenumberLeaves();
    chars_[root_] = Interval(0, content_.size());
    return Status::Ok();
  }

  // The absorbing leaf: the one containing `offset`; appending at the
  // very end extends the last leaf.
  size_t index = offset == content_.size() ? leaves_.size() - 1
                                           : LeafIndexAtOffset(offset);
  NodeId absorbing = leaves_[index];
  const size_t b = chars_[absorbing].begin;
  const size_t e = chars_[absorbing].end;
  const size_t len = text.size();

  content_.insert(offset, text);
  // Extents are unions of leaves, so every node either contains the
  // absorbing leaf (grow), lies entirely after it (shift), or is
  // untouched. Detached nodes are adjusted too, keeping them harmless.
  for (NodeId n = 0; n < kind_.size(); ++n) {
    Interval& iv = chars_[n];
    if (n == absorbing || (iv.begin <= b && iv.end >= e &&
                           !(iv.begin == iv.end))) {
      if (iv.begin <= b && iv.end >= e) iv.end += len;
      continue;
    }
    if (iv.begin >= e) {
      iv.begin += len;
      iv.end += len;
    }
  }
  return Status::Ok();
}

Status Goddag::DeleteText(const Interval& range) {
  if (range.end > content_.size() || range.begin > range.end) {
    return status::OutOfRange(StrFormat(
        "delete range [%zu,%zu) outside content of size %zu", range.begin,
        range.end, content_.size()));
  }
  if (range.empty()) return Status::Ok();
  const size_t d1 = range.begin;
  const size_t d2 = range.end;

  // Align the range with the leaf partition, then drop whole leaves.
  if (d1 > 0 && d1 < content_.size()) {
    CXML_RETURN_IF_ERROR(SplitLeafAt(d1).status());
  }
  if (d2 > 0 && d2 < content_.size()) {
    CXML_RETURN_IF_ERROR(SplitLeafAt(d2).status());
  }
  Interval doomed = LeavesCovering(Interval(d1, d2));
  for (size_t i = doomed.begin; i < doomed.end; ++i) {
    NodeId leaf = leaves_[i];
    for (HierarchyId h = 0; h < num_hierarchies_; ++h) {
      NodeId p = leaf_parents_[leaf][h];
      std::vector<NodeId>& siblings =
          (p == root_) ? root_children_[h] : children_[p];
      siblings.erase(std::remove(siblings.begin(), siblings.end(), leaf),
                     siblings.end());
    }
  }
  leaves_.erase(leaves_.begin() + static_cast<ptrdiff_t>(doomed.begin),
                leaves_.begin() + static_cast<ptrdiff_t>(doomed.end));
  RenumberLeaves();

  for (NodeId n = 0; n < kind_.size(); ++n) {
    chars_[n].begin = MapDeleted(chars_[n].begin, d1, d2);
    chars_[n].end = MapDeleted(chars_[n].end, d1, d2);
  }
  content_.erase(d1, d2 - d1);
  return Status::Ok();
}

size_t Goddag::CoalesceLeaves() {
  size_t merges = 0;
  size_t i = 0;
  while (i + 1 < leaves_.size()) {
    NodeId left = leaves_[i];
    NodeId right = leaves_[i + 1];
    bool mergeable = true;
    for (HierarchyId h = 0; h < num_hierarchies_ && mergeable; ++h) {
      NodeId p = leaf_parents_[left][h];
      if (leaf_parents_[right][h] != p) {
        mergeable = false;
        break;
      }
      // The leaves must be adjacent siblings: a zero-width element
      // between them is a markup boundary that must survive.
      const std::vector<NodeId>& siblings =
          (p == root_) ? root_children_[h] : children_[p];
      size_t at = IndexOf(siblings, left);
      if (at == static_cast<size_t>(-1) || at + 1 >= siblings.size() ||
          siblings[at + 1] != right) {
        mergeable = false;
      }
    }
    if (!mergeable) {
      ++i;
      continue;
    }
    chars_[left].end = chars_[right].end;
    for (HierarchyId h = 0; h < num_hierarchies_; ++h) {
      NodeId p = leaf_parents_[right][h];
      std::vector<NodeId>& siblings =
          (p == root_) ? root_children_[h] : children_[p];
      siblings.erase(std::remove(siblings.begin(), siblings.end(), right),
                     siblings.end());
    }
    leaves_.erase(leaves_.begin() + static_cast<ptrdiff_t>(i) + 1);
    ++merges;
  }
  if (merges > 0) RenumberLeaves();
  return merges;
}

}  // namespace cxml::goddag
