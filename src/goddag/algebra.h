#ifndef CXML_GODDAG_ALGEBRA_H_
#define CXML_GODDAG_ALGEBRA_H_

#include <string_view>
#include <utility>
#include <vector>

#include "goddag/goddag.h"

namespace cxml::goddag {

/// The extent algebra over GODDAG nodes that powers the Extended XPath
/// `overlapping` axis and the paper's "requests for overlapping content
/// given two tags".
///
/// All relations are defined on character extents:
///  * `Overlaps`  — proper overlap (non-empty intersection, no
///    containment either way); the defining relation of concurrent markup.
///  * `Contains`  — a's extent contains b's (possibly equal).
///  * `SameExtent`— equal extents ("co-extensive markup").

bool Overlaps(const Goddag& g, NodeId a, NodeId b);
bool Contains(const Goddag& g, NodeId a, NodeId b);
bool SameExtent(const Goddag& g, NodeId a, NodeId b);

/// Elements (any hierarchy) properly overlapping `node`, document order.
std::vector<NodeId> OverlappingElements(const Goddag& g, NodeId node);

/// Number of elements properly overlapping `node`.
size_t OverlapDegree(const Goddag& g, NodeId node);

/// All pairs (a, b) with tag(a) == tag_a, tag(b) == tag_b and a ∝ b
/// (proper overlap), in document order of a. Sweep over extent endpoints:
/// O(n log n + answers).
std::vector<std::pair<NodeId, NodeId>> FindOverlappingPairs(
    const Goddag& g, std::string_view tag_a, std::string_view tag_b);

/// The stack of elements covering `leaf`, innermost-first, across all
/// hierarchies ("navigation from one structure to another is done through
/// ... leaf nodes").
std::vector<NodeId> CoveringElements(const Goddag& g, NodeId leaf);

/// Interval index over a set of elements: answers "which elements'
/// extents intersect a query interval" in O(log n + answers). Used by
/// the Extended XPath evaluator for `overlapping::` steps and by the
/// benchmarks.
class ExtentIndex {
 public:
  /// Builds over all attached elements of `g` (optionally one tag only).
  explicit ExtentIndex(const Goddag& g, std::string_view tag = {});

  /// Elements whose extent intersects `query` (not necessarily properly).
  std::vector<NodeId> Intersecting(const Interval& query) const;

  /// Elements whose extent properly overlaps `query`.
  std::vector<NodeId> Overlapping(const Interval& query) const;

  size_t size() const { return by_begin_.size(); }

 private:
  struct Entry {
    Interval chars;
    NodeId node;
  };
  const Goddag* g_;
  /// Entries sorted by begin offset.
  std::vector<Entry> by_begin_;
  /// max_end_[i] = max end over by_begin_[0..i] (prefix maxima, enabling
  /// early cut-off during scans).
  std::vector<size_t> max_end_;
};

}  // namespace cxml::goddag

#endif  // CXML_GODDAG_ALGEBRA_H_
