#ifndef CXML_GODDAG_SERIALIZER_H_
#define CXML_GODDAG_SERIALIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "goddag/goddag.h"

namespace cxml::goddag {

/// Serialises one hierarchy of the GODDAG back to a well-formed XML
/// document (the per-hierarchy member of the distributed document).
Result<std::string> SerializeHierarchy(const Goddag& g, HierarchyId h);

/// Serialises every hierarchy; index i is hierarchy i's document.
Result<std::vector<std::string>> SerializeAll(const Goddag& g);

/// Graphviz DOT rendering of the whole GODDAG — the mechanical
/// reproduction of the paper's Figure 2. Hierarchies are colour-coded;
/// leaves are shared boxes at the bottom rank. (dot.cc)
std::string ToDot(const Goddag& g);

/// Plain-text structural summary (node counts, per-hierarchy depth,
/// overlap inventory) used by examples and EXPERIMENTS.md.
std::string StructureSummary(const Goddag& g);

}  // namespace cxml::goddag

#endif  // CXML_GODDAG_SERIALIZER_H_
