#include "goddag/builder.h"

#include <set>

#include "cmh/conflict.h"
#include "common/strings.h"

namespace cxml::goddag {

Status Builder::BuildHierarchy(Goddag* g, HierarchyId h,
                               const dom::Element& root) {
  size_t offset = 0;
  for (const dom::Node* child : root.children()) {
    CXML_RETURN_IF_ERROR(AppendChild(g, h, *child, g->root_, &offset));
  }
  return Status::Ok();
}

Status Builder::AppendChild(Goddag* g, HierarchyId h, const dom::Node& node,
                            NodeId parent, size_t* offset) {
  // Helper appending to the parent's sibling list with *fresh* lookup —
  // AllocNode grows the arena and invalidates previously taken
  // references into children_.
  auto append_sibling = [g, h, parent](NodeId child) {
    if (parent == g->root_) {
      g->root_children_[h].push_back(child);
    } else {
      g->children_[parent].push_back(child);
    }
  };

  switch (node.kind()) {
    case dom::NodeKind::kText: {
      const auto& text = static_cast<const dom::Text&>(node);
      size_t end = *offset + text.text().size();
      CXML_RETURN_IF_ERROR(AppendLeaves(g, h, *offset, end, parent));
      *offset = end;
      return Status::Ok();
    }
    case dom::NodeKind::kElement: {
      const auto& el = static_cast<const dom::Element&>(node);
      NodeId id = g->AllocNode(NodeKind::kElement);
      g->tag_[id] = el.tag();
      g->hierarchy_[id] = h;
      g->attrs_[id] = el.attributes();
      g->parent_[id] = parent;
      size_t begin = *offset;
      append_sibling(id);
      for (const dom::Node* child : el.children()) {
        CXML_RETURN_IF_ERROR(AppendChild(g, h, *child, id, offset));
      }
      g->chars_[id] = Interval(begin, *offset);
      return Status::Ok();
    }
    case dom::NodeKind::kComment:
    case dom::NodeKind::kProcessingInstruction:
      // Carry no content; not represented in the GODDAG (documented).
      return Status::Ok();
    case dom::NodeKind::kDocument:
      return status::Internal("document node below root");
  }
  return Status::Ok();
}

Status Builder::AppendLeaves(Goddag* g, HierarchyId h, size_t begin,
                             size_t end, NodeId parent) {
  if (begin == end) return Status::Ok();
  size_t i = g->LeafIndexAtOffset(begin);
  size_t pos = begin;
  while (pos < end) {
    if (i >= g->leaves_.size()) {
      return status::Internal("leaf layer does not cover content");
    }
    NodeId leaf = g->leaves_[i];
    const Interval& iv = g->chars_[leaf];
    if (iv.begin != pos || iv.end > end) {
      return status::Internal(StrFormat(
          "text run [%zu,%zu) does not align with leaf [%zu,%zu); markup "
          "boundaries must induce the leaf partition",
          begin, end, iv.begin, iv.end));
    }
    if (parent == g->root_) {
      g->root_children_[h].push_back(leaf);
    } else {
      g->children_[parent].push_back(leaf);
    }
    g->leaf_parents_[leaf][h] = parent;
    pos = iv.end;
    ++i;
  }
  return Status::Ok();
}

Result<Goddag> Builder::Build(const cmh::DistributedDocument& doc) {
  const cmh::ConcurrentHierarchies& cmh = doc.cmh();
  const size_t num_h = cmh.size();

  // 1. Collect the union of markup boundaries over all hierarchies.
  std::set<size_t> boundary_set;
  boundary_set.insert(0);
  boundary_set.insert(doc.content().size());
  for (size_t i = 0; i < num_h; ++i) {
    for (const auto& extent :
         cmh::ComputeExtents(doc.document(static_cast<HierarchyId>(i)))) {
      boundary_set.insert(extent.chars.begin);
      boundary_set.insert(extent.chars.end);
    }
  }

  // 2. Create the GODDAG skeleton: root + the induced leaf partition.
  // (The constructor's single whole-content leaf is discarded; it stays
  // detached in the arena.)
  Goddag g(doc.content(), num_h, cmh.root_tag());
  g.BindCmh(&cmh);
  g.leaves_.clear();
  for (auto& rc : g.root_children_) rc.clear();
  std::vector<size_t> boundaries(boundary_set.begin(), boundary_set.end());
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    NodeId leaf = g.AllocNode(NodeKind::kLeaf);
    g.chars_[leaf] = Interval(boundaries[i], boundaries[i + 1]);
    g.leaf_parents_[leaf].assign(num_h, g.root_);
    g.leaves_.push_back(leaf);
  }
  g.RenumberLeaves();

  // 3. Hang one extended DOM tree per hierarchy off the shared root and
  //    the shared leaves.
  for (HierarchyId h = 0; h < num_h; ++h) {
    Status st = BuildHierarchy(&g, h, *doc.document(h).root());
    if (!st.ok()) {
      return st.WithContext(
          StrCat("building hierarchy '", cmh.hierarchy(h).name, "'"));
    }
  }
  return g;
}

}  // namespace cxml::goddag
