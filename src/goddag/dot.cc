// Graphviz DOT export and textual structure summary of a GODDAG
// (declared in serializer.h). ToDot regenerates the paper's Figure 2
// mechanically from any GODDAG instance.

#include <map>

#include "common/strings.h"
#include "goddag/algebra.h"
#include "goddag/serializer.h"

namespace cxml::goddag {

namespace {

/// A small colour cycle for hierarchies (Graphviz X11 names).
const char* const kColors[] = {"blue",   "red",    "darkgreen",
                               "orange", "purple", "brown"};

std::string EscapeDotLabel(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string NodeName(NodeId id) { return StrFormat("n%u", id); }

void EmitSubtree(const Goddag& g, NodeId node, HierarchyId h,
                 std::string* out) {
  if (g.is_leaf(node)) return;  // leaves emitted once, globally
  const char* color = kColors[h % (sizeof(kColors) / sizeof(kColors[0]))];
  std::string label = g.tag(node);
  for (const auto& a : g.attributes(node)) {
    label += StrCat("\n", a.name, "=", a.value);
  }
  *out += StrFormat("  %s [label=\"%s\", shape=ellipse, color=%s];\n",
                    NodeName(node).c_str(), EscapeDotLabel(label).c_str(),
                    color);
  for (NodeId child : g.children(node)) {
    *out += StrFormat("  %s -> %s [color=%s];\n", NodeName(node).c_str(),
                      NodeName(child).c_str(), color);
    EmitSubtree(g, child, h, out);
  }
}

}  // namespace

std::string ToDot(const Goddag& g) {
  std::string out = "digraph goddag {\n  rankdir=TB;\n";
  out += StrFormat("  %s [label=\"<%s>\", shape=box, style=bold];\n",
                   NodeName(g.root()).c_str(), g.root_tag().c_str());
  for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
    const char* color = kColors[h % (sizeof(kColors) / sizeof(kColors[0]))];
    for (NodeId child : g.root_children(h)) {
      out += StrFormat("  %s -> %s [color=%s];\n", NodeName(g.root()).c_str(),
                       NodeName(child).c_str(), color);
      EmitSubtree(g, child, h, &out);
    }
  }
  // Shared leaf layer on one rank, in content order.
  out += "  { rank=sink;\n";
  for (NodeId leaf : g.leaves()) {
    out += StrFormat("    %s [label=\"%s\", shape=box];\n",
                     NodeName(leaf).c_str(),
                     EscapeDotLabel(g.text(leaf)).c_str());
  }
  out += "  }\n";
  if (!g.leaves().empty()) {
    // Invisible chain keeps leaves in content order left-to-right.
    out += "  ";
    for (size_t i = 0; i < g.num_leaves(); ++i) {
      if (i > 0) out += " -> ";
      out += NodeName(g.leaf_at(i));
    }
    out += " [style=invis];\n";
  }
  out += "}\n";
  return out;
}

std::string StructureSummary(const Goddag& g) {
  std::string out;
  out += StrFormat("content: %zu chars, %zu leaves, %zu hierarchies\n",
                   g.content().size(), g.num_leaves(), g.num_hierarchies());
  size_t total_elements = 0;
  for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
    std::vector<NodeId> elements = g.ElementsOf(h);
    total_elements += elements.size();
    std::map<std::string, size_t> tag_counts;
    for (NodeId e : elements) ++tag_counts[g.tag(e)];
    std::string name = g.cmh() != nullptr
                           ? g.cmh()->hierarchy(h).name
                           : StrFormat("hierarchy-%u", h);
    out += StrFormat("  %s: %zu elements (", name.c_str(), elements.size());
    bool first = true;
    for (const auto& [tag, count] : tag_counts) {
      if (!first) out += ", ";
      first = false;
      out += StrFormat("%s x%zu", tag.c_str(), count);
    }
    out += ")\n";
  }
  // Overlap inventory.
  size_t overlap_pairs = 0;
  std::vector<NodeId> all = g.AllElements();
  ExtentIndex index(g);
  for (NodeId e : all) {
    overlap_pairs += index.Overlapping(g.char_range(e)).size();
  }
  overlap_pairs /= 2;  // each pair counted from both sides
  out += StrFormat("  total: %zu elements, %zu overlapping pairs\n",
                   total_elements, overlap_pairs);
  return out;
}

}  // namespace cxml::goddag
