#include "goddag/serializer.h"

#include "common/strings.h"
#include "xml/writer.h"

namespace cxml::goddag {

namespace {

void SerializeNode(const Goddag& g, NodeId node, xml::XmlWriter* writer) {
  if (g.is_leaf(node)) {
    writer->Text(g.text(node));
    return;
  }
  if (g.children(node).empty() && g.char_range(node).empty()) {
    writer->EmptyElement(g.tag(node), g.attributes(node));
    return;
  }
  writer->StartElement(g.tag(node), g.attributes(node));
  for (NodeId child : g.children(node)) {
    SerializeNode(g, child, writer);
  }
  writer->EndElement();
}

}  // namespace

Result<std::string> SerializeHierarchy(const Goddag& g, HierarchyId h) {
  if (h >= g.num_hierarchies()) {
    return status::InvalidArgument(
        StrFormat("hierarchy %u out of range", h));
  }
  xml::XmlWriter writer;
  writer.StartElement(g.root_tag());
  for (NodeId child : g.root_children(h)) {
    SerializeNode(g, child, &writer);
  }
  writer.EndElement();
  return writer.Finish();
}

Result<std::vector<std::string>> SerializeAll(const Goddag& g) {
  std::vector<std::string> out;
  out.reserve(g.num_hierarchies());
  for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
    CXML_ASSIGN_OR_RETURN(std::string doc, SerializeHierarchy(g, h));
    out.push_back(std::move(doc));
  }
  return out;
}

}  // namespace cxml::goddag
