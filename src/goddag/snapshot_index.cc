#include "goddag/snapshot_index.h"

#include <algorithm>
#include <utility>

namespace cxml::goddag {

namespace {

/// True when `anc` is reachable from `node` through parent links (any
/// hierarchy for leaves). Only used to disambiguate equal extents, so
/// it runs on tiny co-extensive groups at build time — never per query.
bool IsTreeAncestor(const Goddag& g, NodeId anc, NodeId node) {
  std::vector<NodeId> frontier;
  if (g.is_leaf(node)) {
    for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
      frontier.push_back(g.leaf_parent(node, h));
    }
  } else if (g.is_element(node)) {
    frontier.push_back(g.parent(node));
  }
  while (!frontier.empty()) {
    NodeId n = frontier.back();
    frontier.pop_back();
    if (n == kInvalidNode) continue;
    if (n == anc) return true;
    if (g.is_element(n)) frontier.push_back(g.parent(n));
  }
  return false;
}

}  // namespace

SnapshotIndex::SnapshotIndex(const Goddag& g) : g_(&g) {
  // ---- global document order: root + attached elements + leaves ----
  std::vector<NodeId> order;
  order.push_back(g.root());
  std::vector<NodeId> elements = g.AllElements();
  order.insert(order.end(), elements.begin(), elements.end());
  order.insert(order.end(), g.leaves().begin(), g.leaves().end());
  std::sort(order.begin(), order.end(),
            [&g](NodeId a, NodeId b) { return g.Before(a, b); });
  rank_.assign(g.arena_size(), kUnranked);
  for (size_t i = 0; i < order.size(); ++i) {
    rank_[order[i]] = static_cast<uint32_t>(i);
  }
  num_ranked_ = order.size();

  // ---- tree depths (memoized parent-chain walk) ----
  depth_.assign(g.arena_size(), kUnranked);
  depth_[g.root()] = 0;
  for (NodeId e : elements) {
    // Walk up to the nearest computed ancestor, then fill back down.
    std::vector<NodeId> chain;
    NodeId n = e;
    while (n != kInvalidNode && depth_[n] == kUnranked) {
      chain.push_back(n);
      n = g.is_element(n) ? g.parent(n) : kInvalidNode;
    }
    uint32_t d = (n == kInvalidNode) ? 0 : depth_[n];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth_[*it] = ++d;
    }
  }
  for (NodeId leaf : g.leaves()) {
    uint32_t d = 0;
    for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
      NodeId p = g.leaf_parent(leaf, h);
      if (p != kInvalidNode && depth_[p] != kUnranked) {
        d = std::max(d, depth_[p] + 1);
      }
    }
    depth_[leaf] = d;
  }

  // ---- (hierarchy, tag) pools, filled in document order ----
  layers_.resize(g.num_hierarchies() + 1);
  for (NodeId n : order) {
    if (g.is_element(n)) {
      const std::string& tag = g.tag(n);
      HierarchyId h = g.hierarchy(n);
      layers_[0].any.nodes.push_back(n);
      layers_[0].by_tag[tag].nodes.push_back(n);
      if (h != kInvalidHierarchy) {
        layers_[h + 1].any.nodes.push_back(n);
        layers_[h + 1].by_tag[tag].nodes.push_back(n);
      }
    } else if (g.is_leaf(n)) {
      leaves_.nodes.push_back(n);
    }
  }
  for (TagPools& layer : layers_) {
    FinishPool(g, &layer.any);
    for (auto& [tag, pool] : layer.by_tag) FinishPool(g, &pool);
  }
  FinishPool(g, &leaves_);

  // ---- equal-extent dominance (the rare co-extensive pairs) ----
  std::map<std::pair<size_t, size_t>, std::vector<NodeId>> groups;
  for (NodeId n : order) {
    Interval iv = g.char_range(n);
    groups[{iv.begin, iv.end}].push_back(n);
  }
  for (const auto& [extent, members] : groups) {
    if (members.size() < 2) continue;
    for (NodeId outer : members) {
      for (NodeId inner : members) {
        if (outer == inner || depth_[outer] >= depth_[inner]) continue;
        if (IsTreeAncestor(g, outer, inner)) {
          eq_dominance_.insert((static_cast<uint64_t>(outer) << 32) | inner);
        }
      }
    }
  }
}

void SnapshotIndex::FinishPool(const Goddag& g, Pool* pool) {
  const size_t n = pool->nodes.size();
  pool->begins.resize(n);
  pool->ends.resize(n);
  pool->max_end.resize(n);
  size_t running = 0;
  for (size_t i = 0; i < n; ++i) {
    Interval iv = g.char_range(pool->nodes[i]);
    pool->begins[i] = iv.begin;
    pool->ends[i] = iv.end;
    running = std::max(running, iv.end);
    pool->max_end[i] = running;
  }
  pool->by_end = pool->nodes;
  std::stable_sort(pool->by_end.begin(), pool->by_end.end(),
                   [&g](NodeId a, NodeId b) {
                     return g.char_range(a).end < g.char_range(b).end;
                   });
  pool->end_keys.resize(n);
  for (size_t i = 0; i < n; ++i) {
    pool->end_keys[i] = g.char_range(pool->by_end[i]).end;
  }
}

const SnapshotIndex::Pool& SnapshotIndex::Elements(
    HierarchyId hq, std::string_view tag) const {
  static const Pool kEmpty;
  size_t layer = (hq == kInvalidHierarchy) ? 0 : static_cast<size_t>(hq) + 1;
  if (layer >= layers_.size()) return kEmpty;
  const TagPools& pools = layers_[layer];
  if (tag.empty()) return pools.any;
  auto it = pools.by_tag.find(tag);
  return it == pools.by_tag.end() ? kEmpty : it->second;
}

const SnapshotIndex::Pool& SnapshotIndex::Leaves() const { return leaves_; }

bool SnapshotIndex::Dominates(NodeId outer, NodeId inner) const {
  if (outer == inner) return false;
  Interval o = g_->char_range(outer);
  Interval i = g_->char_range(inner);
  if (!o.Contains(i)) return false;
  if (o == i) return EqDominates(outer, inner);
  return true;
}

namespace {

/// Shared window bounds for the containment collectors: candidates
/// have begin in [span.begin, span.end] (a zero-width node sitting
/// exactly on either boundary is contained).
std::pair<size_t, size_t> ContainmentWindow(
    const SnapshotIndex::Pool& pool, const Interval& span) {
  size_t lo = static_cast<size_t>(
      std::lower_bound(pool.begins.begin(), pool.begins.end(), span.begin) -
      pool.begins.begin());
  size_t hi = static_cast<size_t>(
      std::upper_bound(pool.begins.begin(), pool.begins.end(), span.end) -
      pool.begins.begin());
  return {lo, hi};
}

}  // namespace

void SnapshotIndex::Dominated(const Pool& pool, NodeId ctx,
                              std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  auto [lo, hi] = ContainmentWindow(pool, span);
  for (size_t i = lo; i < hi; ++i) {
    if (pool.ends[i] > span.end) continue;
    NodeId n = pool.nodes[i];
    if (n == ctx) continue;
    if (pool.begins[i] == span.begin && pool.ends[i] == span.end) {
      if (EqDominates(ctx, n)) out->push_back(n);
    } else {
      out->push_back(n);
    }
  }
}

void SnapshotIndex::Contained(const Pool& pool, NodeId ctx,
                              std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  auto [lo, hi] = ContainmentWindow(pool, span);
  for (size_t i = lo; i < hi; ++i) {
    if (pool.ends[i] > span.end) continue;
    if (pool.nodes[i] == ctx) continue;
    out->push_back(pool.nodes[i]);
  }
}

void SnapshotIndex::Dominating(const Pool& pool, NodeId ctx,
                               std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  // Containers have begin <= span.begin; scan left from the upper
  // bound until the prefix max end shows nothing can still cover us.
  size_t hi = static_cast<size_t>(
      std::upper_bound(pool.begins.begin(), pool.begins.end(), span.begin) -
      pool.begins.begin());
  size_t mark = out->size();
  for (size_t i = hi; i-- > 0;) {
    if (pool.max_end[i] < span.end) break;
    if (pool.ends[i] < span.end) continue;
    NodeId n = pool.nodes[i];
    if (n == ctx) continue;
    if (pool.begins[i] == span.begin && pool.ends[i] == span.end) {
      if (EqDominates(n, ctx)) out->push_back(n);
    } else {
      out->push_back(n);
    }
  }
  std::reverse(out->begin() + static_cast<ptrdiff_t>(mark), out->end());
}

NodeId SnapshotIndex::ScanContainment(const Pool& pool, NodeId ctx,
                                      bool from_back,
                                      bool dominated) const {
  Interval span = g_->char_range(ctx);
  auto [lo, hi] = ContainmentWindow(pool, span);
  for (size_t k = 0, n = hi - lo; k < n; ++k) {
    size_t i = from_back ? hi - 1 - k : lo + k;
    if (pool.ends[i] > span.end) continue;
    NodeId node = pool.nodes[i];
    if (node == ctx) continue;
    if (dominated && pool.begins[i] == span.begin &&
        pool.ends[i] == span.end && !EqDominates(ctx, node)) {
      continue;
    }
    return node;
  }
  return kInvalidNode;
}

NodeId SnapshotIndex::DominatedFirst(const Pool& pool, NodeId ctx) const {
  return ScanContainment(pool, ctx, /*from_back=*/false,
                         /*dominated=*/true);
}

NodeId SnapshotIndex::DominatedLast(const Pool& pool, NodeId ctx) const {
  return ScanContainment(pool, ctx, /*from_back=*/true,
                         /*dominated=*/true);
}

NodeId SnapshotIndex::ContainedFirst(const Pool& pool, NodeId ctx) const {
  return ScanContainment(pool, ctx, /*from_back=*/false,
                         /*dominated=*/false);
}

NodeId SnapshotIndex::ContainedLast(const Pool& pool, NodeId ctx) const {
  return ScanContainment(pool, ctx, /*from_back=*/true,
                         /*dominated=*/false);
}

void SnapshotIndex::FollowingOf(const Pool& pool, NodeId ctx,
                                std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  size_t lo = static_cast<size_t>(
      std::lower_bound(pool.begins.begin(), pool.begins.end(), span.end) -
      pool.begins.begin());
  for (size_t i = lo; i < pool.nodes.size(); ++i) {
    // An equal-extent candidate here implies a zero-width context and
    // a zero-width twin at the same position: not "following".
    if (pool.begins[i] == span.begin && pool.ends[i] == span.end) continue;
    if (pool.nodes[i] == ctx) continue;
    out->push_back(pool.nodes[i]);
  }
}

void SnapshotIndex::PrecedingOf(const Pool& pool, NodeId ctx,
                                std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  size_t hi = static_cast<size_t>(
      std::upper_bound(pool.end_keys.begin(), pool.end_keys.end(),
                       span.begin) -
      pool.end_keys.begin());
  for (size_t i = 0; i < hi; ++i) {
    NodeId n = pool.by_end[i];
    if (n == ctx) continue;
    // Equal-extent twins (zero-width only, see FollowingOf) excluded.
    if (pool.end_keys[i] == span.end && g_->char_range(n).begin == span.begin) {
      continue;
    }
    out->push_back(n);
  }
}

void SnapshotIndex::OverlappingOf(const Pool& pool, const Interval& span,
                                  NodeId ctx,
                                  std::vector<NodeId>* out) const {
  if (pool.empty() || span.empty()) return;
  // Entries with begin >= span.end cannot overlap; scan left from that
  // bound, stopping once the prefix max end falls at or before
  // span.begin.
  size_t hi = static_cast<size_t>(
      std::lower_bound(pool.begins.begin(), pool.begins.end(), span.end) -
      pool.begins.begin());
  size_t mark = out->size();
  for (size_t i = hi; i-- > 0;) {
    if (pool.max_end[i] <= span.begin) break;
    if (pool.nodes[i] == ctx) continue;
    Interval o(pool.begins[i], pool.ends[i]);
    if (o.Overlaps(span)) out->push_back(pool.nodes[i]);
  }
  std::reverse(out->begin() + static_cast<ptrdiff_t>(mark), out->end());
}

void SnapshotIndex::SortDocumentOrder(std::vector<NodeId>* nodes) const {
  std::sort(nodes->begin(), nodes->end(), [this](NodeId a, NodeId b) {
    uint32_t ra = rank_[a];
    uint32_t rb = rank_[b];
    if (ra != rb) return ra < rb;
    // Detached nodes share kUnranked: fall back to the structural
    // comparison so the order stays total and deterministic.
    return ra == kUnranked && g_->Before(a, b);
  });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace cxml::goddag
