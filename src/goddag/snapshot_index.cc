#include "goddag/snapshot_index.h"

#include <algorithm>
#include <set>
#include <utility>

namespace cxml::goddag {

namespace {

/// True when `anc` is reachable from `node` through parent links (any
/// hierarchy for leaves). Only used to disambiguate equal extents, so
/// it runs on tiny co-extensive groups at build time — never per query.
bool IsTreeAncestor(const Goddag& g, NodeId anc, NodeId node) {
  std::vector<NodeId> frontier;
  if (g.is_leaf(node)) {
    for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
      frontier.push_back(g.leaf_parent(node, h));
    }
  } else if (g.is_element(node)) {
    frontier.push_back(g.parent(node));
  }
  while (!frontier.empty()) {
    NodeId n = frontier.back();
    frontier.pop_back();
    if (n == kInvalidNode) continue;
    if (n == anc) return true;
    if (g.is_element(n)) frontier.push_back(g.parent(n));
  }
  return false;
}

/// Whether `n` is part of the document right now. Detachment leaves a
/// node's tag/hierarchy/extent intact in the arena, so these public
/// probes are the only signals: an element is attached iff it has a
/// parent (RemoveElement resets it), a leaf iff the leaf table still
/// points back at it (splits and deletes renumber the table).
bool Attached(const Goddag& g, NodeId n) {
  if (g.is_root(n)) return true;
  if (g.is_element(n)) return g.parent(n) != kInvalidNode;
  if (g.is_leaf(n)) {
    size_t i = g.leaf_index(n);
    return i < g.num_leaves() && g.leaf_at(i) == n;
  }
  return false;
}

}  // namespace

void SnapshotIndex::BuildRanks(const Goddag& g, std::vector<NodeId> order) {
  order_ = std::move(order);
  const size_t n = order_.size();

  // ---- ranks + the stored extents the next Patch will diff against ----
  order_begins_.resize(n);
  order_ends_.resize(n);
  rank_.assign(g.arena_size(), kUnranked);
  for (size_t i = 0; i < n; ++i) {
    rank_[order_[i]] = static_cast<uint32_t>(i);
    Interval iv = g.char_range(order_[i]);
    order_begins_[i] = iv.begin;
    order_ends_[i] = iv.end;
  }
  num_ranked_ = n;
}

void SnapshotIndex::BuildDepthsFull(const Goddag& g) {
  // ---- tree depths (memoized parent-chain walk; elements first so
  // every leaf sees its parents' depths) ----
  depth_.assign(g.arena_size(), kUnranked);
  depth_[g.root()] = 0;
  std::vector<NodeId> chain;
  for (NodeId e : order_) {
    if (!g.is_element(e)) continue;
    chain.clear();
    NodeId x = e;
    while (x != kInvalidNode && depth_[x] == kUnranked) {
      chain.push_back(x);
      x = g.is_element(x) ? g.parent(x) : kInvalidNode;
    }
    uint32_t d = (x == kInvalidNode) ? 0 : depth_[x];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth_[*it] = ++d;
    }
  }
  for (NodeId leaf : order_) {
    if (!g.is_leaf(leaf)) continue;
    uint32_t d = 0;
    for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
      NodeId p = g.leaf_parent(leaf, h);
      if (p != kInvalidNode && depth_[p] != kUnranked) {
        d = std::max(d, depth_[p] + 1);
      }
    }
    depth_[leaf] = d;
  }
}

void SnapshotIndex::BuildGlobal(const Goddag& g, std::vector<NodeId> order) {
  BuildRanks(g, std::move(order));
  BuildDepthsFull(g);

  // ---- equal-extent dominance (the rare co-extensive pairs). Document
  // order sorts by (begin asc, end desc) first, so every equal-extent
  // group is one contiguous run of order_ — no grouping map needed. ----
  const size_t n = order_.size();
  eq_dominance_.clear();
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && order_begins_[j] == order_begins_[i] &&
           order_ends_[j] == order_ends_[i]) {
      ++j;
    }
    if (j - i >= 2) {
      for (size_t a = i; a < j; ++a) {
        for (size_t b = i; b < j; ++b) {
          NodeId outer = order_[a];
          NodeId inner = order_[b];
          if (outer == inner || depth_[outer] >= depth_[inner]) continue;
          if (IsTreeAncestor(g, outer, inner)) {
            eq_dominance_.push_back((static_cast<uint64_t>(outer) << 32) |
                                    inner);
          }
        }
      }
    }
    i = j;
  }
  std::sort(eq_dominance_.begin(), eq_dominance_.end());
  eq_dominance_.erase(
      std::unique(eq_dominance_.begin(), eq_dominance_.end()),
      eq_dominance_.end());
}

void SnapshotIndex::AdoptRanks(const Goddag& g, std::vector<NodeId> order,
                               std::vector<size_t> begins,
                               std::vector<size_t> ends) {
  order_ = std::move(order);
  order_begins_ = std::move(begins);
  order_ends_ = std::move(ends);
  rank_.assign(g.arena_size(), kUnranked);
  for (size_t i = 0; i < order_.size(); ++i) {
    rank_[order_[i]] = static_cast<uint32_t>(i);
  }
  num_ranked_ = order_.size();
}

void SnapshotIndex::PatchDepths(const Goddag& g, const SnapshotIndex& prev,
                                const std::vector<NodeId>& dirty,
                                const std::vector<Interval>& merged) {
  const size_t arena = g.arena_size();
  depth_ = prev.depth_;
  depth_.resize(arena, kUnranked);
  depth_[g.root()] = 0;

  // A node's depth changes only when its parent chain gained or lost an
  // element, and every such element contains the node — so the change
  // is confined to `merged`, the touched spans Patch derived (a removed
  // or shifted node contributes its *previous* extent, an added one its
  // current extent).

  // Detached nodes lose their depth exactly as a fresh build would
  // leave them unranked; recomputation below restores every node that
  // is still (or newly) attached inside a span.
  for (NodeId d : dirty) {
    if (rank_[d] == kUnranked && static_cast<size_t>(d) < arena) {
      depth_[d] = kUnranked;
    }
  }

  auto in_span = [&merged](const Interval& iv) {
    for (const Interval& s : merged) {
      if (iv.begin > s.end) continue;
      if (iv.begin < s.begin) return false;  // merged is begin-sorted
      return iv.end <= s.end;
    }
    return false;
  };

  // Recompute the contained nodes: elements via the constructor's
  // memoized chain walk (a chain leaves the spans or hits an already
  // fresh node and reads a trusted depth), then leaves.
  std::vector<char> fresh(arena, 0);
  fresh[g.root()] = 1;
  std::vector<NodeId> chain;
  std::vector<NodeId> affected_leaves;
  const size_t n = order_.size();
  for (const Interval& s : merged) {
    const size_t lo = static_cast<size_t>(
        std::lower_bound(order_begins_.begin(), order_begins_.end(),
                         s.begin) -
        order_begins_.begin());
    for (size_t i = lo; i < n && order_begins_[i] <= s.end; ++i) {
      if (order_ends_[i] > s.end) continue;
      NodeId node = order_[i];
      if (g.is_leaf(node)) {
        affected_leaves.push_back(node);
        continue;
      }
      if (!g.is_element(node) || fresh[node] != 0) continue;
      chain.clear();
      NodeId x = node;
      while (x != kInvalidNode && fresh[x] == 0 && in_span(g.char_range(x))) {
        chain.push_back(x);
        x = g.is_element(x) ? g.parent(x) : kInvalidNode;
      }
      uint32_t d = (x == kInvalidNode) ? 0 : depth_[x];
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        depth_[*it] = ++d;
        fresh[*it] = 1;
      }
    }
  }
  for (NodeId leaf : affected_leaves) {
    uint32_t d = 0;
    for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
      NodeId p = g.leaf_parent(leaf, h);
      if (p != kInvalidNode && depth_[p] != kUnranked) {
        d = std::max(d, depth_[p] + 1);
      }
    }
    depth_[leaf] = d;
  }
}

void SnapshotIndex::PatchEqDominance(const Goddag& g,
                                     const SnapshotIndex& prev,
                                     const std::vector<char>& carried,
                                     const std::vector<NodeId>& added) {
  // A pair between two carried nodes survives the edit verbatim: their
  // extents are unchanged by definition of "carried", and tree
  // ancestorship between surviving nodes is edit-invariant —
  // InsertElement splices the new element into existing parent chains
  // and RemoveElement contracts them, so no path between two surviving
  // nodes appears or disappears. Both sides are sorted vectors, so the
  // splice is a filtered copy plus one merge.
  eq_dominance_.clear();
  eq_dominance_.reserve(prev.eq_dominance_.size());
  const size_t prev_arena = carried.size();
  for (uint64_t key : prev.eq_dominance_) {
    const auto outer = static_cast<NodeId>(key >> 32);
    const auto inner = static_cast<NodeId>(key & 0xffffffffu);
    if (static_cast<size_t>(outer) < prev_arena && carried[outer] != 0 &&
        static_cast<size_t>(inner) < prev_arena && carried[inner] != 0) {
      eq_dominance_.push_back(key);
    }
  }
  // New pairs can only involve an added node, and pairs live inside
  // equal-extent runs of the document order — rescan just the runs an
  // added node joined with the constructor's exact nested loops
  // (re-derived carried pairs fall to the final dedup).
  std::vector<uint64_t> fresh_pairs;
  std::vector<size_t> rescanned;
  const size_t n = order_.size();
  for (NodeId a : added) {
    const uint32_t r = rank_[a];
    size_t lo = r;
    while (lo > 0 && order_begins_[lo - 1] == order_begins_[r] &&
           order_ends_[lo - 1] == order_ends_[r]) {
      --lo;
    }
    size_t hi = r + 1;
    while (hi < n && order_begins_[hi] == order_begins_[r] &&
           order_ends_[hi] == order_ends_[r]) {
      ++hi;
    }
    if (hi - lo < 2) continue;
    if (std::find(rescanned.begin(), rescanned.end(), lo) !=
        rescanned.end()) {
      continue;
    }
    rescanned.push_back(lo);
    for (size_t x = lo; x < hi; ++x) {
      for (size_t y = lo; y < hi; ++y) {
        NodeId outer = order_[x];
        NodeId inner = order_[y];
        if (outer == inner || depth_[outer] >= depth_[inner]) continue;
        if (IsTreeAncestor(g, outer, inner)) {
          fresh_pairs.push_back((static_cast<uint64_t>(outer) << 32) |
                                inner);
        }
      }
    }
  }
  if (!fresh_pairs.empty()) {
    std::sort(fresh_pairs.begin(), fresh_pairs.end());
    const size_t carried_n = eq_dominance_.size();
    eq_dominance_.insert(eq_dominance_.end(), fresh_pairs.begin(),
                         fresh_pairs.end());
    std::inplace_merge(eq_dominance_.begin(),
                       eq_dominance_.begin() +
                           static_cast<ptrdiff_t>(carried_n),
                       eq_dominance_.end());
    eq_dominance_.erase(
        std::unique(eq_dominance_.begin(), eq_dominance_.end()),
        eq_dominance_.end());
  }
}

SnapshotIndex::SnapshotIndex(const Goddag& g) {
  g_ = &g;
  // ---- global document order: root + attached elements + leaves ----
  std::vector<NodeId> order;
  std::vector<NodeId> elements = g.AllElements();
  order.reserve(1 + elements.size() + g.num_leaves());
  order.push_back(g.root());
  order.insert(order.end(), elements.begin(), elements.end());
  order.insert(order.end(), g.leaves().begin(), g.leaves().end());
  std::sort(order.begin(), order.end(),
            [&g](NodeId a, NodeId b) { return g.Before(a, b); });
  BuildGlobal(g, std::move(order));

  // ---- (hierarchy, tag) pools, filled in document order ----
  auto freeze = [&g](Pool pool) {
    FinishPool(g, &pool);
    return std::make_shared<const Pool>(std::move(pool));
  };
  const size_t num_layers = g.num_hierarchies() + 1;
  std::vector<Pool> any_build(num_layers);
  std::vector<std::map<std::string, Pool, std::less<>>> tag_build(
      num_layers);
  Pool leaves_build;
  for (NodeId n : order_) {
    if (g.is_element(n)) {
      const std::string& tag = g.tag(n);
      HierarchyId h = g.hierarchy(n);
      any_build[0].nodes.push_back(n);
      tag_build[0][tag].nodes.push_back(n);
      if (h != kInvalidHierarchy) {
        any_build[h + 1].nodes.push_back(n);
        tag_build[h + 1][tag].nodes.push_back(n);
      }
    } else if (g.is_leaf(n)) {
      leaves_build.nodes.push_back(n);
    }
  }
  layers_.resize(num_layers);
  for (size_t layer = 0; layer < num_layers; ++layer) {
    layers_[layer].any = freeze(std::move(any_build[layer]));
    for (auto& [tag, pool] : tag_build[layer]) {
      layers_[layer].by_tag.emplace(tag, freeze(std::move(pool)));
    }
  }
  leaves_ = freeze(std::move(leaves_build));
}

std::shared_ptr<const SnapshotIndex> SnapshotIndex::Patch(
    const SnapshotIndex& prev, const Goddag& g, const IndexDelta& delta,
    PatchStats* stats) {
  if (delta.wide) return nullptr;
  const size_t prev_arena = prev.rank_.size();
  const size_t arena = g.arena_size();
  const size_t num_layers = prev.layers_.size();
  if (arena < prev_arena) return nullptr;
  if (g.num_hierarchies() + 1 != num_layers) return nullptr;

  // ---- authoritative touched set from the arena diff. NodeIds survive
  // Goddag::Clone verbatim, so position-for-position comparison against
  // the extents recorded at prev's build is exact: a node is touched
  // when its attachment or extent changed, or it is new arena growth.
  // Past the width cap a full rebuild is cheaper than the per-pool
  // bookkeeping — bail. ----
  const size_t width_cap = std::max<size_t>(64, prev.num_ranked_ / 8);
  std::vector<NodeId> added;         // attached now, not carried over
  std::vector<NodeId> dirty_nodes;   // everything touched (key derivation)
  std::vector<char> carried(prev_arena, 1);
  size_t touched = 0;
  size_t dropped = 0;  // prev-ranked nodes not carried over
  auto touch = [&](NodeId n) {
    dirty_nodes.push_back(n);
    return ++touched <= width_cap;
  };
  for (size_t i = 0; i < prev_arena; ++i) {
    NodeId n = static_cast<NodeId>(i);
    const bool was = prev.rank_[n] != kUnranked;
    const bool now = Attached(g, n);
    if (!was) {
      // No supported edit path re-attaches a detached node (undo of a
      // remove allocates a fresh id); seeing one means the clone
      // provenance assumption broke — rebuild.
      if (now) return nullptr;
      continue;
    }
    if (!now) {
      carried[n] = 0;
      ++dropped;
      if (!touch(n)) return nullptr;
      continue;
    }
    const uint32_t r = prev.rank_[n];
    Interval iv = g.char_range(n);
    if (iv.begin == prev.order_begins_[r] &&
        iv.end == prev.order_ends_[r]) {
      continue;  // untouched: rides the shared spine
    }
    carried[n] = 0;  // extent shifted (boundary leaf split): remove+re-add
    ++dropped;
    added.push_back(n);
    if (!touch(n)) return nullptr;
  }
  for (size_t i = prev_arena; i < arena; ++i) {
    NodeId n = static_cast<NodeId>(i);
    if (!Attached(g, n)) continue;
    added.push_back(n);
    if (!touch(n)) return nullptr;
  }

  // ---- dirty (hierarchy, tag) keys. Tags and hierarchies persist in
  // the arena after detachment, so even removed nodes name the pools
  // they left. ----
  std::vector<char> any_dirty(num_layers, 0);
  std::vector<std::set<std::string, std::less<>>> tag_dirty(num_layers);
  bool leaves_dirty = false;
  for (NodeId n : dirty_nodes) {
    if (g.is_element(n)) {
      const std::string& tag = g.tag(n);
      HierarchyId h = g.hierarchy(n);
      any_dirty[0] = 1;
      tag_dirty[0].insert(tag);
      if (h != kInvalidHierarchy && static_cast<size_t>(h) + 1 < num_layers) {
        any_dirty[h + 1] = 1;
        tag_dirty[h + 1].insert(tag);
      }
    } else if (g.is_leaf(n)) {
      leaves_dirty = true;
    }
  }

  // ---- the touched character spans. Every dropped node's previous
  // extent and every added node's current extent is one of these, so
  // any array sorted by extent (the global order, every pool) changes
  // only inside the index window covering [spans.front().begin,
  // spans.back().end] — everything before and after is carried
  // verbatim and bulk-copied. PatchDepths reuses the same spans as the
  // bound on where tree depths can change. ----
  std::sort(added.begin(), added.end(),
            [&g](NodeId a, NodeId b) { return g.Before(a, b); });
  std::vector<Interval> spans;
  {
    std::vector<Interval> raw;
    raw.reserve(dirty_nodes.size() + added.size());
    for (NodeId n : dirty_nodes) {
      if (static_cast<size_t>(n) < prev_arena &&
          prev.rank_[n] != kUnranked) {
        const uint32_t r = prev.rank_[n];
        raw.emplace_back(prev.order_begins_[r], prev.order_ends_[r]);
      }
    }
    for (NodeId n : added) raw.push_back(g.char_range(n));
    std::sort(raw.begin(), raw.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin != b.begin ? a.begin < b.begin
                                          : a.end < b.end;
              });
    for (const Interval& s : raw) {
      if (!spans.empty() && s.begin <= spans.back().end) {
        spans.back().end = std::max(spans.back().end, s.end);
      } else {
        spans.push_back(s);
      }
    }
  }
  const size_t win_lo_char = spans.empty() ? 0 : spans.front().begin;
  const size_t win_hi_char = spans.empty() ? 0 : spans.back().end;

  // ---- the new document order: bulk-copy the carried prefix and
  // suffix straight from prev's arrays (extents included — carried
  // extents are unchanged by definition), and merge only the window.
  // The untouched spine stays relatively sorted (Before reads begin/
  // end/kind/hierarchy/id, all immutable for untouched nodes), so the
  // window merge restores the total order without the constructor's
  // full O(n log n) comparator sort. ----
  const size_t pon = prev.order_.size();
  const size_t an = added.size();
  std::vector<size_t> added_begins(an);
  std::vector<size_t> added_ends(an);
  for (size_t j = 0; j < an; ++j) {
    Interval iv = g.char_range(added[j]);
    added_begins[j] = iv.begin;
    added_ends[j] = iv.end;
  }
  const size_t wlo = static_cast<size_t>(
      std::lower_bound(prev.order_begins_.begin(),
                       prev.order_begins_.end(), win_lo_char) -
      prev.order_begins_.begin());
  const size_t whi = static_cast<size_t>(
      std::upper_bound(prev.order_begins_.begin(),
                       prev.order_begins_.end(), win_hi_char) -
      prev.order_begins_.begin());
  const size_t new_n = pon - dropped + an;
  std::vector<NodeId> order(new_n);
  std::vector<size_t> order_begins(new_n);
  std::vector<size_t> order_ends(new_n);
  std::copy(prev.order_.begin(), prev.order_.begin() + wlo, order.begin());
  std::copy(prev.order_begins_.begin(), prev.order_begins_.begin() + wlo,
            order_begins.begin());
  std::copy(prev.order_ends_.begin(), prev.order_ends_.begin() + wlo,
            order_ends.begin());
  size_t out = wlo;
  {
    size_t j = 0;
    auto add_first = [&](size_t i) {
      // Does added[j] precede prev.order_[i] in document order?
      if (added_begins[j] != prev.order_begins_[i]) {
        return added_begins[j] < prev.order_begins_[i];
      }
      if (added_ends[j] != prev.order_ends_[i]) {
        return added_ends[j] > prev.order_ends_[i];
      }
      return g.Before(added[j], prev.order_[i]);
    };
    for (size_t i = wlo; i < whi; ++i) {
      if (carried[prev.order_[i]] == 0) continue;
      while (j < an && add_first(i)) {
        order[out] = added[j];
        order_begins[out] = added_begins[j];
        order_ends[out] = added_ends[j];
        ++out;
        ++j;
      }
      order[out] = prev.order_[i];
      order_begins[out] = prev.order_begins_[i];
      order_ends[out] = prev.order_ends_[i];
      ++out;
    }
    while (j < an) {
      order[out] = added[j];
      order_begins[out] = added_begins[j];
      order_ends[out] = added_ends[j];
      ++out;
      ++j;
    }
  }
  if (out + (pon - whi) != new_n) return nullptr;  // diff bookkeeping broke
  std::copy(prev.order_.begin() + whi, prev.order_.end(),
            order.begin() + out);
  std::copy(prev.order_begins_.begin() + whi, prev.order_begins_.end(),
            order_begins.begin() + out);
  std::copy(prev.order_ends_.begin() + whi, prev.order_ends_.end(),
            order_ends.begin() + out);

  auto idx = std::shared_ptr<SnapshotIndex>(new SnapshotIndex());
  idx->g_ = &g;
  idx->AdoptRanks(g, std::move(order), std::move(order_begins),
                  std::move(order_ends));
  // O(n) insurance on the construction above, over the adopted extent
  // arrays (document order is begin asc, end desc, with Goddag::Before
  // breaking exact extent ties): a violated merge falls back to the
  // oracle instead of ever serving a mis-ordered index.
  for (size_t i = 1; i < idx->order_.size(); ++i) {
    if (idx->order_begins_[i] < idx->order_begins_[i - 1]) return nullptr;
    if (idx->order_begins_[i] == idx->order_begins_[i - 1]) {
      if (idx->order_ends_[i] > idx->order_ends_[i - 1]) return nullptr;
      if (idx->order_ends_[i] == idx->order_ends_[i - 1] &&
          g.Before(idx->order_[i], idx->order_[i - 1])) {
        return nullptr;
      }
    }
  }
  idx->PatchDepths(g, prev, dirty_nodes, spans);
  idx->PatchEqDominance(g, prev, carried, added);

  // ---- pools: splice every dirty key from its predecessor pool and
  // alias every untouched one (extent arrays, prefix-max-end and
  // end-sorted companions ride along — they are part of the Pool).
  // Carried entries keep their recorded extents and their relative
  // order, so a splice is two comparator-free linear merges — drop the
  // entries the diff removed, interleave the additions — with no arena
  // reads: nodes/begins/ends merge by new rank, by_end/end_keys by
  // (end, new rank), which is exactly the order FinishPool's stable
  // sort over a document-ordered input produces. ----
  PatchStats local;
  PatchStats* st = stats != nullptr ? stats : &local;
  st->touched_nodes = touched;
  const std::vector<uint32_t>& new_rank = idx->rank_;
  auto splice = [&](const Pool* was, const std::vector<NodeId>& add) {
    const size_t pn = was != nullptr ? was->nodes.size() : 0;
    const size_t kn = add.size();
    std::vector<size_t> ab(kn);
    std::vector<size_t> ae(kn);
    for (size_t j = 0; j < kn; ++j) {
      Interval iv = g.char_range(add[j]);
      ab[j] = iv.begin;
      ae[j] = iv.end;
    }
    Pool pool;
    pool.nodes.reserve(pn + kn);
    pool.begins.reserve(pn + kn);
    pool.ends.reserve(pn + kn);
    // Dropped entries' previous extents and added entries' current
    // extents all lie in the touched spans, so only the index window
    // with begin in [win_lo_char, win_hi_char] needs the per-entry
    // merge — the rest is the same window argument as the global order.
    size_t plo = 0;
    size_t phi = 0;
    if (was != nullptr) {
      plo = static_cast<size_t>(
          std::lower_bound(was->begins.begin(), was->begins.end(),
                           win_lo_char) -
          was->begins.begin());
      phi = static_cast<size_t>(
          std::upper_bound(was->begins.begin(), was->begins.end(),
                           win_hi_char) -
          was->begins.begin());
      pool.nodes.insert(pool.nodes.end(), was->nodes.begin(),
                        was->nodes.begin() + plo);
      pool.begins.insert(pool.begins.end(), was->begins.begin(),
                         was->begins.begin() + plo);
      pool.ends.insert(pool.ends.end(), was->ends.begin(),
                       was->ends.begin() + plo);
    }
    for (size_t i = plo, j = 0; i < phi || j < kn;) {
      if (i < phi && carried[was->nodes[i]] == 0) {
        ++i;
        continue;
      }
      if (i < phi &&
          (j >= kn || new_rank[was->nodes[i]] < new_rank[add[j]])) {
        pool.nodes.push_back(was->nodes[i]);
        pool.begins.push_back(was->begins[i]);
        pool.ends.push_back(was->ends[i]);
        ++i;
      } else {
        pool.nodes.push_back(add[j]);
        pool.begins.push_back(ab[j]);
        pool.ends.push_back(ae[j]);
        ++j;
      }
    }
    const size_t mid = pool.nodes.size();
    if (was != nullptr) {
      pool.nodes.insert(pool.nodes.end(), was->nodes.begin() + phi,
                        was->nodes.end());
      pool.begins.insert(pool.begins.end(), was->begins.begin() + phi,
                         was->begins.end());
      pool.ends.insert(pool.ends.end(), was->ends.begin() + phi,
                       was->ends.end());
    }
    const size_t m = pool.nodes.size();
    pool.max_end.resize(m);
    if (was != nullptr && plo > 0) {
      std::copy(was->max_end.begin(), was->max_end.begin() + plo,
                pool.max_end.begin());
    }
    size_t running = plo > 0 ? was->max_end[plo - 1] : 0;
    for (size_t i = plo; i < mid; ++i) {
      running = std::max(running, pool.ends[i]);
      pool.max_end[i] = running;
    }
    if (mid < m && phi > 0 && running == was->max_end[phi - 1]) {
      // The window left the running maximum unchanged: the suffix
      // prefix-max values are the predecessor's verbatim.
      std::copy(was->max_end.begin() + phi, was->max_end.end(),
                pool.max_end.begin() + mid);
    } else {
      for (size_t i = mid; i < m; ++i) {
        running = std::max(running, pool.ends[i]);
        pool.max_end[i] = running;
      }
    }
    // The end-sorted companion: additions in (end, rank) order; the
    // carried subsequence of was->by_end already is, and its affected
    // entries sit in the window with end key in the same char bounds.
    std::vector<size_t> aj(kn);
    for (size_t j = 0; j < kn; ++j) aj[j] = j;
    std::sort(aj.begin(), aj.end(), [&](size_t x, size_t y) {
      if (ae[x] != ae[y]) return ae[x] < ae[y];
      return new_rank[add[x]] < new_rank[add[y]];
    });
    pool.by_end.reserve(m);
    pool.end_keys.reserve(m);
    size_t elo = 0;
    size_t ehi = 0;
    if (was != nullptr) {
      elo = static_cast<size_t>(
          std::lower_bound(was->end_keys.begin(), was->end_keys.end(),
                           win_lo_char) -
          was->end_keys.begin());
      ehi = static_cast<size_t>(
          std::upper_bound(was->end_keys.begin(), was->end_keys.end(),
                           win_hi_char) -
          was->end_keys.begin());
      pool.by_end.insert(pool.by_end.end(), was->by_end.begin(),
                         was->by_end.begin() + elo);
      pool.end_keys.insert(pool.end_keys.end(), was->end_keys.begin(),
                           was->end_keys.begin() + elo);
    }
    for (size_t i = elo, j = 0; i < ehi || j < kn;) {
      if (i < ehi && carried[was->by_end[i]] == 0) {
        ++i;
        continue;
      }
      bool take_prev = i < ehi;
      if (take_prev && j < kn) {
        const size_t pe = was->end_keys[i];
        const size_t je = ae[aj[j]];
        take_prev = pe != je
                        ? pe < je
                        : new_rank[was->by_end[i]] < new_rank[add[aj[j]]];
      }
      if (take_prev) {
        pool.by_end.push_back(was->by_end[i]);
        pool.end_keys.push_back(was->end_keys[i]);
        ++i;
      } else {
        pool.by_end.push_back(add[aj[j]]);
        pool.end_keys.push_back(ae[aj[j]]);
        ++j;
      }
    }
    if (was != nullptr) {
      pool.by_end.insert(pool.by_end.end(), was->by_end.begin() + ehi,
                         was->by_end.end());
      pool.end_keys.insert(pool.end_keys.end(),
                           was->end_keys.begin() + ehi,
                           was->end_keys.end());
    }
    return std::make_shared<const Pool>(std::move(pool));
  };

  // Per-key addition lists (added is already document-order sorted, so
  // each filtered list is too).
  std::vector<std::vector<NodeId>> any_add(num_layers);
  std::vector<std::map<std::string, std::vector<NodeId>, std::less<>>>
      tag_add(num_layers);
  std::vector<NodeId> leaves_add;
  for (NodeId n : added) {
    if (g.is_element(n)) {
      const std::string& tag = g.tag(n);
      HierarchyId h = g.hierarchy(n);
      any_add[0].push_back(n);
      tag_add[0][tag].push_back(n);
      if (h != kInvalidHierarchy) {
        any_add[h + 1].push_back(n);
        tag_add[h + 1][tag].push_back(n);
      }
    } else if (g.is_leaf(n)) {
      leaves_add.push_back(n);
    }
  }
  const std::vector<NodeId> no_adds;
  idx->layers_.resize(num_layers);
  for (size_t layer = 0; layer < num_layers; ++layer) {
    TagPools& out = idx->layers_[layer];
    const TagPools& was = prev.layers_[layer];
    if (any_dirty[layer]) {
      out.any = splice(was.any.get(), any_add[layer]);
      ++st->pools_rebuilt;
    } else {
      out.any = was.any;
      ++st->pools_shared;
    }
    for (const auto& [tag, pool] : was.by_tag) {
      if (tag_dirty[layer].count(tag) != 0) continue;  // respliced below
      out.by_tag.emplace(tag, pool);
      ++st->pools_shared;
    }
    for (const std::string& tag : tag_dirty[layer]) {
      auto wit = was.by_tag.find(tag);
      const Pool* wp = wit != was.by_tag.end() ? wit->second.get() : nullptr;
      auto ait = tag_add[layer].find(tag);
      const std::vector<NodeId>& add =
          ait != tag_add[layer].end() ? ait->second : no_adds;
      PoolPtr rebuilt = splice(wp, add);
      // A dirtied tag whose last member left simply vanishes from the
      // map, exactly as a fresh build would leave it out.
      if (rebuilt->nodes.empty()) continue;
      out.by_tag[tag] = std::move(rebuilt);
      ++st->pools_rebuilt;
    }
  }
  if (leaves_dirty) {
    idx->leaves_ = splice(prev.leaves_.get(), leaves_add);
    ++st->pools_rebuilt;
  } else {
    idx->leaves_ = prev.leaves_;
    ++st->pools_shared;
  }
  return idx;
}

void SnapshotIndex::FinishPool(const Goddag& g, Pool* pool) {
  const size_t n = pool->nodes.size();
  pool->begins.resize(n);
  pool->ends.resize(n);
  pool->max_end.resize(n);
  size_t running = 0;
  for (size_t i = 0; i < n; ++i) {
    Interval iv = g.char_range(pool->nodes[i]);
    pool->begins[i] = iv.begin;
    pool->ends[i] = iv.end;
    running = std::max(running, iv.end);
    pool->max_end[i] = running;
  }
  pool->by_end = pool->nodes;
  std::stable_sort(pool->by_end.begin(), pool->by_end.end(),
                   [&g](NodeId a, NodeId b) {
                     return g.char_range(a).end < g.char_range(b).end;
                   });
  pool->end_keys.resize(n);
  for (size_t i = 0; i < n; ++i) {
    pool->end_keys[i] = g.char_range(pool->by_end[i]).end;
  }
}

const SnapshotIndex::Pool& SnapshotIndex::Elements(
    HierarchyId hq, std::string_view tag) const {
  static const Pool kEmpty;
  size_t layer = (hq == kInvalidHierarchy) ? 0 : static_cast<size_t>(hq) + 1;
  if (layer >= layers_.size()) return kEmpty;
  const TagPools& pools = layers_[layer];
  if (tag.empty()) return pools.any != nullptr ? *pools.any : kEmpty;
  auto it = pools.by_tag.find(tag);
  return it == pools.by_tag.end() ? kEmpty : *it->second;
}

const SnapshotIndex::Pool& SnapshotIndex::Leaves() const {
  static const Pool kEmpty;
  return leaves_ != nullptr ? *leaves_ : kEmpty;
}

bool SnapshotIndex::Dominates(NodeId outer, NodeId inner) const {
  if (outer == inner) return false;
  Interval o = g_->char_range(outer);
  Interval i = g_->char_range(inner);
  if (!o.Contains(i)) return false;
  if (o == i) return EqDominates(outer, inner);
  return true;
}

namespace {

/// Shared window bounds for the containment collectors: candidates
/// have begin in [span.begin, span.end] (a zero-width node sitting
/// exactly on either boundary is contained).
std::pair<size_t, size_t> ContainmentWindow(
    const SnapshotIndex::Pool& pool, const Interval& span) {
  size_t lo = static_cast<size_t>(
      std::lower_bound(pool.begins.begin(), pool.begins.end(), span.begin) -
      pool.begins.begin());
  size_t hi = static_cast<size_t>(
      std::upper_bound(pool.begins.begin(), pool.begins.end(), span.end) -
      pool.begins.begin());
  return {lo, hi};
}

}  // namespace

void SnapshotIndex::Dominated(const Pool& pool, NodeId ctx,
                              std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  auto [lo, hi] = ContainmentWindow(pool, span);
  for (size_t i = lo; i < hi; ++i) {
    if (pool.ends[i] > span.end) continue;
    NodeId n = pool.nodes[i];
    if (n == ctx) continue;
    if (pool.begins[i] == span.begin && pool.ends[i] == span.end) {
      if (EqDominates(ctx, n)) out->push_back(n);
    } else {
      out->push_back(n);
    }
  }
}

void SnapshotIndex::Contained(const Pool& pool, NodeId ctx,
                              std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  auto [lo, hi] = ContainmentWindow(pool, span);
  for (size_t i = lo; i < hi; ++i) {
    if (pool.ends[i] > span.end) continue;
    if (pool.nodes[i] == ctx) continue;
    out->push_back(pool.nodes[i]);
  }
}

void SnapshotIndex::Dominating(const Pool& pool, NodeId ctx,
                               std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  // Containers have begin <= span.begin; scan left from the upper
  // bound until the prefix max end shows nothing can still cover us.
  size_t hi = static_cast<size_t>(
      std::upper_bound(pool.begins.begin(), pool.begins.end(), span.begin) -
      pool.begins.begin());
  size_t mark = out->size();
  for (size_t i = hi; i-- > 0;) {
    if (pool.max_end[i] < span.end) break;
    if (pool.ends[i] < span.end) continue;
    NodeId n = pool.nodes[i];
    if (n == ctx) continue;
    if (pool.begins[i] == span.begin && pool.ends[i] == span.end) {
      if (EqDominates(n, ctx)) out->push_back(n);
    } else {
      out->push_back(n);
    }
  }
  std::reverse(out->begin() + static_cast<ptrdiff_t>(mark), out->end());
}

NodeId SnapshotIndex::ScanContainment(const Pool& pool, NodeId ctx,
                                      bool from_back,
                                      bool dominated) const {
  Interval span = g_->char_range(ctx);
  auto [lo, hi] = ContainmentWindow(pool, span);
  for (size_t k = 0, n = hi - lo; k < n; ++k) {
    size_t i = from_back ? hi - 1 - k : lo + k;
    if (pool.ends[i] > span.end) continue;
    NodeId node = pool.nodes[i];
    if (node == ctx) continue;
    if (dominated && pool.begins[i] == span.begin &&
        pool.ends[i] == span.end && !EqDominates(ctx, node)) {
      continue;
    }
    return node;
  }
  return kInvalidNode;
}

NodeId SnapshotIndex::DominatedFirst(const Pool& pool, NodeId ctx) const {
  return ScanContainment(pool, ctx, /*from_back=*/false,
                         /*dominated=*/true);
}

NodeId SnapshotIndex::DominatedLast(const Pool& pool, NodeId ctx) const {
  return ScanContainment(pool, ctx, /*from_back=*/true,
                         /*dominated=*/true);
}

NodeId SnapshotIndex::ContainedFirst(const Pool& pool, NodeId ctx) const {
  return ScanContainment(pool, ctx, /*from_back=*/false,
                         /*dominated=*/false);
}

NodeId SnapshotIndex::ContainedLast(const Pool& pool, NodeId ctx) const {
  return ScanContainment(pool, ctx, /*from_back=*/true,
                         /*dominated=*/false);
}

void SnapshotIndex::FollowingOf(const Pool& pool, NodeId ctx,
                                std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  size_t lo = static_cast<size_t>(
      std::lower_bound(pool.begins.begin(), pool.begins.end(), span.end) -
      pool.begins.begin());
  for (size_t i = lo; i < pool.nodes.size(); ++i) {
    // An equal-extent candidate here implies a zero-width context and
    // a zero-width twin at the same position: not "following".
    if (pool.begins[i] == span.begin && pool.ends[i] == span.end) continue;
    if (pool.nodes[i] == ctx) continue;
    out->push_back(pool.nodes[i]);
  }
}

void SnapshotIndex::PrecedingOf(const Pool& pool, NodeId ctx,
                                std::vector<NodeId>* out) const {
  Interval span = g_->char_range(ctx);
  size_t hi = static_cast<size_t>(
      std::upper_bound(pool.end_keys.begin(), pool.end_keys.end(),
                       span.begin) -
      pool.end_keys.begin());
  for (size_t i = 0; i < hi; ++i) {
    NodeId n = pool.by_end[i];
    if (n == ctx) continue;
    // Equal-extent twins (zero-width only, see FollowingOf) excluded.
    if (pool.end_keys[i] == span.end && g_->char_range(n).begin == span.begin) {
      continue;
    }
    out->push_back(n);
  }
}

void SnapshotIndex::OverlappingOf(const Pool& pool, const Interval& span,
                                  NodeId ctx,
                                  std::vector<NodeId>* out) const {
  if (pool.empty() || span.empty()) return;
  // Entries with begin >= span.end cannot overlap; scan left from that
  // bound, stopping once the prefix max end falls at or before
  // span.begin.
  size_t hi = static_cast<size_t>(
      std::lower_bound(pool.begins.begin(), pool.begins.end(), span.end) -
      pool.begins.begin());
  size_t mark = out->size();
  for (size_t i = hi; i-- > 0;) {
    if (pool.max_end[i] <= span.begin) break;
    if (pool.nodes[i] == ctx) continue;
    Interval o(pool.begins[i], pool.ends[i]);
    if (o.Overlaps(span)) out->push_back(pool.nodes[i]);
  }
  std::reverse(out->begin() + static_cast<ptrdiff_t>(mark), out->end());
}

void SnapshotIndex::SortDocumentOrder(std::vector<NodeId>* nodes) const {
  std::sort(nodes->begin(), nodes->end(), [this](NodeId a, NodeId b) {
    uint32_t ra = rank_[a];
    uint32_t rb = rank_[b];
    if (ra != rb) return ra < rb;
    // Detached nodes share kUnranked: fall back to the structural
    // comparison so the order stays total and deterministic.
    return ra == kUnranked && g_->Before(a, b);
  });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace cxml::goddag
