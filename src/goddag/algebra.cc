#include "goddag/algebra.h"

#include <algorithm>

namespace cxml::goddag {

bool Overlaps(const Goddag& g, NodeId a, NodeId b) {
  return g.char_range(a).Overlaps(g.char_range(b));
}

bool Contains(const Goddag& g, NodeId a, NodeId b) {
  return g.char_range(a).Contains(g.char_range(b));
}

bool SameExtent(const Goddag& g, NodeId a, NodeId b) {
  return g.char_range(a) == g.char_range(b);
}

std::vector<NodeId> OverlappingElements(const Goddag& g, NodeId node) {
  ExtentIndex index(g);
  std::vector<NodeId> out = index.Overlapping(g.char_range(node));
  out.erase(std::remove(out.begin(), out.end(), node), out.end());
  g.SortDocumentOrder(&out);
  return out;
}

size_t OverlapDegree(const Goddag& g, NodeId node) {
  return OverlappingElements(g, node).size();
}

std::vector<std::pair<NodeId, NodeId>> FindOverlappingPairs(
    const Goddag& g, std::string_view tag_a, std::string_view tag_b) {
  std::vector<NodeId> as = g.ElementsByTag(tag_a);
  ExtentIndex b_index(g, tag_b);
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId a : as) {
    for (NodeId b : b_index.Overlapping(g.char_range(a))) {
      if (a != b) out.emplace_back(a, b);
    }
  }
  return out;
}

std::vector<NodeId> CoveringElements(const Goddag& g, NodeId leaf) {
  std::vector<NodeId> out;
  for (HierarchyId h = 0; h < g.num_hierarchies(); ++h) {
    NodeId node = g.leaf_parent(leaf, h);
    while (node != g.root() && node != kInvalidNode) {
      out.push_back(node);
      node = g.parent(node);
    }
  }
  // Innermost-first: sort by extent length, then document order.
  std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    size_t la = g.char_range(a).length();
    size_t lb = g.char_range(b).length();
    if (la != lb) return la < lb;
    return g.Before(a, b);
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ExtentIndex::ExtentIndex(const Goddag& g, std::string_view tag) : g_(&g) {
  std::vector<NodeId> elements =
      tag.empty() ? g.AllElements() : g.ElementsByTag(tag);
  by_begin_.reserve(elements.size());
  for (NodeId node : elements) {
    by_begin_.push_back({g.char_range(node), node});
  }
  std::sort(by_begin_.begin(), by_begin_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.chars.begin != b.chars.begin) {
                return a.chars.begin < b.chars.begin;
              }
              return a.chars.end > b.chars.end;
            });
  max_end_.resize(by_begin_.size());
  size_t running = 0;
  for (size_t i = 0; i < by_begin_.size(); ++i) {
    running = std::max(running, by_begin_[i].chars.end);
    max_end_[i] = running;
  }
}

std::vector<NodeId> ExtentIndex::Intersecting(const Interval& query) const {
  std::vector<NodeId> out;
  if (by_begin_.empty() || query.empty()) return out;
  // Entries with begin >= query.end cannot intersect: binary search the
  // upper bound, then scan left, cutting off once prefix max end <= begin.
  size_t hi = static_cast<size_t>(
      std::upper_bound(by_begin_.begin(), by_begin_.end(), query.end - 1,
                       [](size_t pos, const Entry& e) {
                         return pos < e.chars.begin;
                       }) -
      by_begin_.begin());
  for (size_t i = hi; i-- > 0;) {
    if (max_end_[i] <= query.begin) break;  // nothing further intersects
    if (by_begin_[i].chars.Intersects(query)) {
      out.push_back(by_begin_[i].node);
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<NodeId> ExtentIndex::Overlapping(const Interval& query) const {
  std::vector<NodeId> out;
  for (NodeId node : Intersecting(query)) {
    if (g_->char_range(node).Overlaps(query)) out.push_back(node);
  }
  return out;
}

}  // namespace cxml::goddag
