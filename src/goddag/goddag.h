#ifndef CXML_GODDAG_GODDAG_H_
#define CXML_GODDAG_GODDAG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cmh/hierarchy.h"
#include "common/interval.h"
#include "common/result.h"
#include "xml/token.h"

namespace cxml::sacx {
class GoddagHandler;
}  // namespace cxml::sacx

namespace cxml::goddag {

using cmh::HierarchyId;
using cmh::kInvalidHierarchy;

/// Handle to a GODDAG node. Stable across mutations (nodes are
/// arena-allocated and never reused within one Goddag's lifetime).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Node kinds of the Generalized Ordered-Descendant Directed Acyclic
/// Graph (Sperberg-McQueen & Huitfeldt 2000), as used by the paper:
/// one shared root, per-hierarchy element trees, and a shared layer of
/// leaf nodes (text fragments).
enum class NodeKind : uint8_t {
  kRoot,
  kElement,
  kLeaf,
};

const char* NodeKindToString(NodeKind kind);

/// The GODDAG: the in-memory data model for multihierarchical
/// document-centric XML (paper §3, Figure 2).
///
/// Structure:
///  * `content()` is the shared character data.
///  * The content is partitioned into ordered **leaves** — maximal
///    fragments whose borders are "given by markup positions from all
///    hierarchies".
///  * Each hierarchy `h` contributes a tree of **element** nodes over the
///    leaves; trees are united at the single **root** node and at the
///    leaf layer.
///  * Navigation "from one structure to another is done through root node
///    or leaf (text) nodes" — every leaf knows its parent in *each*
///    hierarchy.
///
/// Invariants (checked by `Validate()`):
///  I1 leaves are in content order and partition `[0, content.size())`;
///  I2 every element's leaf range is a contiguous interval;
///  I3 per-hierarchy parent/child links form a tree rooted at `root()`;
///  I4 an element's children lie inside its leaf range, are ordered, and
///     tile it exactly;
///  I5 element tags belong to their hierarchy's vocabulary (when a CMH is
///     bound).
class Goddag {
 public:
  /// An empty GODDAG over `content` with `num_hierarchies` hierarchies:
  /// one leaf per content (or none when content is empty) and a root.
  /// Use goddag::Builder / sacx::SacxParser for construction from markup.
  Goddag(std::string content, size_t num_hierarchies,
         std::string root_tag = "r");

  Goddag& operator=(const Goddag&) = delete;
  Goddag(Goddag&&) = default;
  Goddag& operator=(Goddag&&) = default;

  /// Optionally binds the CMH that defines hierarchy names/DTDs.
  /// The pointer is stored; the CMH must outlive the Goddag.
  void BindCmh(const cmh::ConcurrentHierarchies* cmh) { cmh_ = cmh; }
  const cmh::ConcurrentHierarchies* cmh() const { return cmh_; }

  // ------------------------------------------------------------ global
  const std::string& content() const { return content_; }
  size_t num_hierarchies() const { return num_hierarchies_; }
  NodeId root() const { return root_; }
  const std::string& root_tag() const { return tag_[root_]; }
  /// Total nodes ever allocated (includes detached ones).
  size_t arena_size() const { return kind_.size(); }

  // ------------------------------------------------------- node access
  NodeKind kind(NodeId node) const { return kind_[node]; }
  bool is_element(NodeId node) const {
    return kind_[node] == NodeKind::kElement;
  }
  bool is_leaf(NodeId node) const { return kind_[node] == NodeKind::kLeaf; }
  bool is_root(NodeId node) const { return node == root_; }

  /// Tag of an element (or the root tag). Leaves have no tag.
  const std::string& tag(NodeId node) const { return tag_[node]; }
  /// Hierarchy of an element; kInvalidHierarchy for root and leaves.
  HierarchyId hierarchy(NodeId node) const { return hierarchy_[node]; }

  const std::vector<xml::Attribute>& attributes(NodeId node) const {
    return attrs_[node];
  }
  /// Attribute value or nullptr.
  const std::string* FindAttribute(NodeId node, std::string_view name) const;
  void SetAttribute(NodeId node, std::string_view name,
                    std::string_view value);
  void RemoveAttribute(NodeId node, std::string_view name);

  /// Character extent `[begin, end)` of the node in `content()`.
  Interval char_range(NodeId node) const;
  /// Leaf-index extent `[first, past_last)` of the node.
  Interval leaf_range(NodeId node) const;
  /// The text the node dominates (substring of content()).
  std::string_view text(NodeId node) const;

  // ------------------------------------------------------- structure
  /// Ordered children of an element (elements of the same hierarchy
  /// and/or leaves). Only meaningful for elements.
  const std::vector<NodeId>& children(NodeId element) const {
    return children_[element];
  }
  /// Ordered children of the root *within hierarchy h*.
  const std::vector<NodeId>& root_children(HierarchyId h) const {
    return root_children_[h];
  }
  /// Parent of an element within its own hierarchy (an element or root).
  NodeId parent(NodeId element) const { return parent_[element]; }
  /// Parent of a leaf within hierarchy `h` (an element or the root).
  NodeId leaf_parent(NodeId leaf, HierarchyId h) const;
  /// Parent of `node` as seen from hierarchy `h`: for elements of `h`,
  /// their tree parent; for leaves, `leaf_parent`; root has none.
  NodeId parent_in(NodeId node, HierarchyId h) const;

  // ------------------------------------------------------- leaf layer
  size_t num_leaves() const { return leaves_.size(); }
  NodeId leaf_at(size_t index) const { return leaves_[index]; }
  const std::vector<NodeId>& leaves() const { return leaves_; }
  /// Index of a leaf node in the leaf order.
  size_t leaf_index(NodeId leaf) const { return leaf_index_[leaf]; }

  /// The smallest leaf interval covering character range `chars`
  /// (leaves straddling the endpoints are included).
  Interval LeavesCovering(const Interval& chars) const;

  // ------------------------------------------------------ enumeration
  /// All (attached) elements of hierarchy `h` in document order.
  std::vector<NodeId> ElementsOf(HierarchyId h) const;
  /// All attached elements (all hierarchies) in document order.
  std::vector<NodeId> AllElements() const;
  /// All attached elements with `tag`, optionally restricted to `h`.
  std::vector<NodeId> ElementsByTag(
      std::string_view tag, HierarchyId h = kInvalidHierarchy) const;

  /// Document order: primarily by character start; ties broken by later
  /// end (containing before contained), then hierarchy, then kind
  /// (root < element < leaf), then allocation order.
  bool Before(NodeId a, NodeId b) const;
  /// Sorts a node vector into document order, removing duplicates.
  void SortDocumentOrder(std::vector<NodeId>* nodes) const;

  // -------------------------------------------------------- mutation
  /// Inserts a new element with `tag` into hierarchy `h` spanning exactly
  /// the character range `chars`. Splits boundary leaves when `chars`
  /// cuts through a leaf; re-hangs the covered nodes under the new
  /// element. Fails when the range partially overlaps an element of the
  /// *same* hierarchy (within one hierarchy markup must stay nested) or
  /// when offsets are out of range. (mutation.cc)
  Result<NodeId> InsertElement(HierarchyId h, std::string_view tag,
                               std::vector<xml::Attribute> attrs,
                               const Interval& chars);

  /// Removes an element, splicing its children into its parent.
  /// The node becomes detached; its id is never reused. (mutation.cc)
  Status RemoveElement(NodeId element);

  /// Splits the leaf containing `offset` at `offset`, if not already a
  /// boundary. All covering elements in all hierarchies are updated.
  /// Returns the leaf that now *starts* at `offset`. (mutation.cc)
  Result<NodeId> SplitLeafAt(size_t offset);

  /// Inserts `text` into the shared content at `offset`. The leaf
  /// containing `offset` absorbs the new characters; every element
  /// containing that leaf grows, everything after shifts. (mutation.cc)
  Status InsertText(size_t offset, std::string_view text);

  /// Deletes the character range from the shared content. Leaves wholly
  /// inside disappear; elements shrink, and elements entirely within the
  /// range become zero-width (their markup survives as milestones —
  /// deleting text never silently deletes markup). (mutation.cc)
  Status DeleteText(const Interval& range);

  /// Restores leaf minimality: merges adjacent leaves that have the same
  /// parent in every hierarchy and are adjacent siblings there (i.e. no
  /// markup boundary separates them any more). Returns the number of
  /// merges. (mutation.cc)
  size_t CoalesceLeaves();

  /// Structural invariant check (I1–I5); Ok on healthy structures.
  /// (validate.cc)
  Status Validate() const;

  // ---------------------------------------------------------- cloning
  /// Native structural deep copy: duplicates the shared content, the
  /// leaf layer, every per-hierarchy tree, and the node/edge arenas
  /// directly — no serializer round trip. NodeIds are arena indices,
  /// so they carry over verbatim: a node id valid in `*this` names the
  /// corresponding node in the copy, which is what edit::EditSession
  /// and the XPath overlap axes rely on (they never need remapping).
  /// Detached nodes are copied too, keeping the arenas aligned.
  ///
  /// `cmh` is the binding for the copy — pass the clone's own CMH
  /// (see storage::Clone, which pairs this with a CMH registry clone),
  /// or nullptr to share this GODDAG's binding. (goddag.cc)
  Goddag Clone(const cmh::ConcurrentHierarchies* cmh = nullptr) const;

 private:
  friend class Builder;
  friend class ::cxml::sacx::GoddagHandler;

  /// Memberwise copy behind Clone() — every member is a value type
  /// (arenas indexed by NodeId), so the default copy is already deep
  /// and automatically covers members added later. Private so copies
  /// only arise through the explicit Clone().
  Goddag(const Goddag&) = default;

  NodeId AllocNode(NodeKind kind);
  /// The leaf whose char range contains `offset` (binary search).
  size_t LeafIndexAtOffset(size_t offset) const;
  void RenumberLeaves();

  std::string content_;
  size_t num_hierarchies_ = 0;
  const cmh::ConcurrentHierarchies* cmh_ = nullptr;

  // Parallel node arenas indexed by NodeId.
  std::vector<NodeKind> kind_;
  std::vector<std::string> tag_;
  std::vector<HierarchyId> hierarchy_;
  std::vector<std::vector<xml::Attribute>> attrs_;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<Interval> chars_;       // leaves: exact; elements: cached
  std::vector<size_t> leaf_index_;    // leaves only

  /// leaf parents: indexed [leaf_arena_slot][hierarchy].
  std::vector<std::vector<NodeId>> leaf_parents_;

  NodeId root_ = kInvalidNode;
  std::vector<std::vector<NodeId>> root_children_;  // per hierarchy
  std::vector<NodeId> leaves_;  // in content order
};

}  // namespace cxml::goddag

#endif  // CXML_GODDAG_GODDAG_H_
