#ifndef CXML_GODDAG_SNAPSHOT_INDEX_H_
#define CXML_GODDAG_SNAPSHOT_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "goddag/goddag.h"
#include "goddag/index_delta.h"

namespace cxml::goddag {

/// Immutable acceleration structure over one GODDAG, built once per
/// snapshot and shared by every reader pinned to it (it never mutates
/// after construction, so concurrent lookups need no locks).
///
/// It answers the Extended XPath axis primitives in O(log n + window)
/// instead of the evaluator's naive O(n) full scans per context node.
/// The window is exactly the matches for following/preceding and for
/// tag-restricted containment steps; for ancestor/overlapping the
/// prefix-max-end cutoff bounds it by the entries left of the context
/// whose prefix still reaches the query — a document-spanning element
/// keeps that prefix alive, degrading those two collectors toward
/// O(pool), which is still never worse than the naive scan (see the
/// ROADMAP open item on a long-interval tier):
///
///  * **Pools** — the attached elements are bucketed by
///    (hierarchy, tag), with an "any hierarchy" and an "any tag" view of
///    each, plus one pool for the leaf layer. A pool keeps its nodes in
///    document order together with parallel begin/end extent arrays, a
///    prefix-maximum of extent ends (the classic interval-containment
///    cutoff) and a second ordering sorted by extent end. A step's name
///    test and hierarchy qualifier select a pool *before* the axis runs,
///    so `descendant(h)::tag` binary-searches the few nodes that could
///    match instead of filtering all of them afterwards.
///  * **Document-order ranks** — every attached node's position in the
///    global document order, making `Before` one integer compare.
///  * **Depths and equal-extent dominance** — per-node tree depth and a
///    precomputed relation of the (rare) equal-extent node pairs where
///    one side is a tree ancestor of the other, making `Dominates` O(1)
///    with the same equal-extent disambiguation as the evaluator's
///    naive `Dominates` (strict extent containment, or equal extents
///    and tree ancestorship).
///
/// Pools are held by `shared_ptr` so successive snapshot versions can
/// share them persistently: `Patch` builds the next version's index by
/// rebuilding only the (hierarchy, tag) pools a commit dirtied and
/// aliasing every untouched pool — extent arrays, prefix-max-end and
/// end-sorted companions included — straight from the predecessor.
/// A patched index is byte-identical in behaviour to a fresh build
/// (the constructor remains the equivalence oracle); when the edit is
/// too wide or the preconditions fail, Patch declines and the caller
/// falls back to the constructor.
///
/// Axis semantics implemented here (kept bit-identical to the
/// evaluator's naive scans, which remain available as an equivalence
/// oracle — see xpath::AxisStrategy):
///  * `Dominated`/`Dominating` — descendant/ancestor on element pools;
///  * `Contained` — plain extent containment excluding the context
///    (the descendant axis' leaf rule: a leaf co-extensive with the
///    context element *is* a descendant);
///  * `FollowingOf`/`PrecedingOf` — strictly after/before in content
///    order, excluding equal-extent twins (which can only arise between
///    zero-width milestones at the same position);
///  * `OverlappingOf` — proper extent overlap, the paper's concurrent
///    markup relation.
class SnapshotIndex {
 public:
  /// Builds over all attached nodes of `g`. `g` must outlive the index
  /// and must not be mutated while the index is in use (snapshots are
  /// immutable by contract; rebuild after mutating a private copy).
  explicit SnapshotIndex(const Goddag& g);

  /// One (hierarchy, tag)-restricted view of the attached nodes.
  struct Pool {
    /// Nodes in document order (== extent begin asc, end desc, with
    /// Goddag::Before tie-breaks).
    std::vector<NodeId> nodes;
    /// Parallel extent arrays (cache-friendly scans without chasing
    /// back into the arena).
    std::vector<size_t> begins;
    std::vector<size_t> ends;
    /// max_end[i] = max(ends[0..i]): scanning left from an upper bound
    /// stops as soon as no earlier entry can still reach the query.
    std::vector<size_t> max_end;
    /// Node ids re-sorted by extent end asc (for preceding ranges).
    std::vector<NodeId> by_end;
    /// Parallel end offsets for by_end.
    std::vector<size_t> end_keys;

    bool empty() const { return nodes.empty(); }
    size_t size() const { return nodes.size(); }
  };

  /// Pool-sharing tallies of one Patch attempt, for observability
  /// (cxml_index_pool_reuse_total and friends).
  struct PatchStats {
    /// Pool objects aliased from the predecessor index untouched.
    size_t pools_shared = 0;
    /// Pool objects rebuilt because the commit dirtied their key.
    size_t pools_rebuilt = 0;
    /// Authoritative touched-node count from the arena diff.
    size_t touched_nodes = 0;
  };

  /// Builds the index for `g` by patching `prev` — the index of the
  /// snapshot `g` was cloned from — instead of rebuilding from
  /// scratch. NodeIds survive Goddag::Clone verbatim, so the
  /// authoritative set of changed nodes is derived from the arena diff
  /// (prev's recorded order/extents vs `g`); `delta` contributes
  /// provenance (its presence asserts the clone relationship) and the
  /// wide-edit veto. Only pools whose (hierarchy, tag) key a touched
  /// node dirtied are rebuilt; everything else — including the global
  /// document order's untouched spine — is shared with `prev` via
  /// shared_ptr, so a small commit costs O(touched + dirty pools +
  /// n·cheap) instead of the constructor's full sort.
  ///
  /// Returns nullptr when patching is not worth it or not safe —
  /// wide/absent delta, arena shrank, hierarchy count changed, more
  /// than max(64, ranked/8) nodes touched, or the merged order fails
  /// verification — and the caller must fall back to the constructor.
  /// `prev` may be deleted afterwards: shared pools are plain value
  /// arrays with no reference back into prev or its GODDAG.
  static std::shared_ptr<const SnapshotIndex> Patch(
      const SnapshotIndex& prev, const Goddag& g, const IndexDelta& delta,
      PatchStats* stats = nullptr);

  /// Element pool for hierarchy `hq` (kInvalidHierarchy = all) and
  /// `tag` (empty = any). Returns an empty pool for unknown
  /// combinations — never fails.
  const Pool& Elements(HierarchyId hq, std::string_view tag = {}) const;
  /// The shared leaf layer (content order == document order).
  const Pool& Leaves() const;

  // ------------------------------------------------------ O(1) relations
  /// Document-order position of an attached node (root, element, leaf);
  /// kUnranked for detached nodes.
  static constexpr uint32_t kUnranked = static_cast<uint32_t>(-1);
  uint32_t rank(NodeId node) const { return rank_[node]; }
  /// Document-order comparison via ranks; matches Goddag::Before for
  /// attached nodes.
  bool Before(NodeId a, NodeId b) const { return rank_[a] < rank_[b]; }
  /// Tree depth within the node's own hierarchy (root = 0, elements =
  /// 1 + parent depth, leaves = 1 + max parent depth over hierarchies).
  uint32_t depth(NodeId node) const { return depth_[node]; }
  /// Extent containment with equal-extent disambiguation — the same
  /// relation as the evaluator's naive Dominates, in O(1): `outer`
  /// dominates `inner` when inner's extent is strictly inside outer's,
  /// or extents are equal and `outer` is a tree ancestor of `inner`.
  bool Dominates(NodeId outer, NodeId inner) const;

  // -------------------------------------------------- axis primitives
  // All collectors append matching node ids to `*out` (callers own
  // deduplication and final document-order normalisation).

  /// Pool nodes dominated by `ctx` — the descendant axis over elements.
  void Dominated(const Pool& pool, NodeId ctx, std::vector<NodeId>* out) const;
  /// Pool nodes whose extent is contained in ctx's (equal allowed),
  /// excluding `ctx` itself — the descendant axis' leaf rule.
  void Contained(const Pool& pool, NodeId ctx, std::vector<NodeId>* out) const;
  /// Pool nodes dominating `ctx` — the ancestor axis over elements.
  void Dominating(const Pool& pool, NodeId ctx,
                  std::vector<NodeId>* out) const;
  /// Positional-pushdown variants of Dominated/Contained: the first or
  /// last pool node (in document order — pool order IS document order)
  /// the full collector would have appended, found without
  /// materialising the window. kInvalidNode when the window is empty.
  /// The evaluator uses these for compiled descendant steps whose
  /// leading predicate is [1] or [last()] (see xpath::StepPlan).
  NodeId DominatedFirst(const Pool& pool, NodeId ctx) const;
  NodeId DominatedLast(const Pool& pool, NodeId ctx) const;
  NodeId ContainedFirst(const Pool& pool, NodeId ctx) const;
  NodeId ContainedLast(const Pool& pool, NodeId ctx) const;

  /// Pool nodes whose extent starts at or after ctx's end, excluding
  /// equal-extent twins (zero-width contexts).
  void FollowingOf(const Pool& pool, NodeId ctx,
                   std::vector<NodeId>* out) const;
  /// Pool nodes whose extent ends at or before ctx's begin, excluding
  /// equal-extent twins. Appends in extent-end order, not document
  /// order.
  void PrecedingOf(const Pool& pool, NodeId ctx,
                   std::vector<NodeId>* out) const;
  /// Pool nodes properly overlapping `span`, excluding `ctx`.
  void OverlappingOf(const Pool& pool, const Interval& span, NodeId ctx,
                     std::vector<NodeId>* out) const;

  /// Sorts into document order by rank and removes duplicates
  /// (equivalent to Goddag::SortDocumentOrder for attached nodes).
  void SortDocumentOrder(std::vector<NodeId>* nodes) const;

  size_t num_ranked() const { return num_ranked_; }

 private:
  using PoolPtr = std::shared_ptr<const Pool>;

  struct TagPools {
    PoolPtr any;
    std::map<std::string, PoolPtr, std::less<>> by_tag;
  };

  /// For Patch: members are filled field by field.
  SnapshotIndex() = default;

  /// Installs the global per-node state from an already doc-order
  /// sorted `order`: ranks, depths, equal-extent dominance, and the
  /// stored order/extent arrays Patch diffs against next time.
  void BuildGlobal(const Goddag& g, std::vector<NodeId> order);
  /// Ranks + the stored order/extent arrays, computing extents from
  /// the arena (constructor path).
  void BuildRanks(const Goddag& g, std::vector<NodeId> order);
  /// Ranks from pre-assembled order/extent arrays (patch path — the
  /// carried stretches were bulk-copied from the predecessor).
  void AdoptRanks(const Goddag& g, std::vector<NodeId> order,
                  std::vector<size_t> begins, std::vector<size_t> ends);
  /// Full tree-depth recompute (constructor path).
  void BuildDepthsFull(const Goddag& g);
  /// Patch-path depths: copies the predecessor's depth array and
  /// recomputes only nodes contained in the touched spans — a node's
  /// depth can change only when its parent chain gained or lost an
  /// element, which confines the change to that element's extent.
  void PatchDepths(const Goddag& g, const SnapshotIndex& prev,
                   const std::vector<NodeId>& dirty,
                   const std::vector<Interval>& merged);
  /// Patch-path replacement for the equal-extent dominance scan: pairs
  /// between two carried nodes survive the edit verbatim, so only the
  /// equal-extent runs an added node joined are rescanned.
  void PatchEqDominance(const Goddag& g, const SnapshotIndex& prev,
                        const std::vector<char>& carried,
                        const std::vector<NodeId>& added);

  static void FinishPool(const Goddag& g, Pool* pool);
  /// The one containment scan behind Dominated/Contained First/Last:
  /// walks the window forward or backward and returns the first node
  /// passing the shared filter (`dominated` adds the equal-extent
  /// EqDominates rule; without it, equal extents are plain
  /// containment). Keeping a single copy is what guarantees the
  /// positional pushdown can never diverge from the full collectors.
  NodeId ScanContainment(const Pool& pool, NodeId ctx, bool from_back,
                         bool dominated) const;
  bool EqDominates(NodeId outer, NodeId inner) const {
    return std::binary_search(
        eq_dominance_.begin(), eq_dominance_.end(),
        (static_cast<uint64_t>(outer) << 32) | inner);
  }

  const Goddag* g_ = nullptr;
  /// Arena-indexed document-order ranks (kUnranked for detached nodes).
  std::vector<uint32_t> rank_;
  /// Arena-indexed tree depths.
  std::vector<uint32_t> depth_;
  size_t num_ranked_ = 0;
  /// The global document order and its extents *as of this build* —
  /// what Patch diffs the successor GODDAG against, so the predecessor
  /// GODDAG itself is never needed again.
  std::vector<NodeId> order_;
  std::vector<size_t> order_begins_;
  std::vector<size_t> order_ends_;
  /// layers_[0] = all hierarchies; layers_[h + 1] = hierarchy h.
  /// Pool objects may be shared with neighbouring versions' indexes.
  std::vector<TagPools> layers_;
  PoolPtr leaves_;
  /// Packed (outer << 32 | inner) pairs of equal-extent nodes where
  /// outer is a tree ancestor of inner, kept sorted for binary-search
  /// lookups. Equal-extent groups are tiny relative to the document
  /// (co-extensive markup), and a sorted vector makes Patch's
  /// filter-and-merge splice a pair of linear passes.
  std::vector<uint64_t> eq_dominance_;
};

}  // namespace cxml::goddag

#endif  // CXML_GODDAG_SNAPSHOT_INDEX_H_
