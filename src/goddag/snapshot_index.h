#ifndef CXML_GODDAG_SNAPSHOT_INDEX_H_
#define CXML_GODDAG_SNAPSHOT_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "goddag/goddag.h"

namespace cxml::goddag {

/// Immutable acceleration structure over one GODDAG, built once per
/// snapshot and shared by every reader pinned to it (it never mutates
/// after construction, so concurrent lookups need no locks).
///
/// It answers the Extended XPath axis primitives in O(log n + window)
/// instead of the evaluator's naive O(n) full scans per context node.
/// The window is exactly the matches for following/preceding and for
/// tag-restricted containment steps; for ancestor/overlapping the
/// prefix-max-end cutoff bounds it by the entries left of the context
/// whose prefix still reaches the query — a document-spanning element
/// keeps that prefix alive, degrading those two collectors toward
/// O(pool), which is still never worse than the naive scan (see the
/// ROADMAP open item on a long-interval tier):
///
///  * **Pools** — the attached elements are bucketed by
///    (hierarchy, tag), with an "any hierarchy" and an "any tag" view of
///    each, plus one pool for the leaf layer. A pool keeps its nodes in
///    document order together with parallel begin/end extent arrays, a
///    prefix-maximum of extent ends (the classic interval-containment
///    cutoff) and a second ordering sorted by extent end. A step's name
///    test and hierarchy qualifier select a pool *before* the axis runs,
///    so `descendant(h)::tag` binary-searches the few nodes that could
///    match instead of filtering all of them afterwards.
///  * **Document-order ranks** — every attached node's position in the
///    global document order, making `Before` one integer compare.
///  * **Depths and equal-extent dominance** — per-node tree depth and a
///    precomputed relation of the (rare) equal-extent node pairs where
///    one side is a tree ancestor of the other, making `Dominates` O(1)
///    with the same equal-extent disambiguation as the evaluator's
///    naive `Dominates` (strict extent containment, or equal extents
///    and tree ancestorship).
///
/// Axis semantics implemented here (kept bit-identical to the
/// evaluator's naive scans, which remain available as an equivalence
/// oracle — see xpath::AxisStrategy):
///  * `Dominated`/`Dominating` — descendant/ancestor on element pools;
///  * `Contained` — plain extent containment excluding the context
///    (the descendant axis' leaf rule: a leaf co-extensive with the
///    context element *is* a descendant);
///  * `FollowingOf`/`PrecedingOf` — strictly after/before in content
///    order, excluding equal-extent twins (which can only arise between
///    zero-width milestones at the same position);
///  * `OverlappingOf` — proper extent overlap, the paper's concurrent
///    markup relation.
class SnapshotIndex {
 public:
  /// Builds over all attached nodes of `g`. `g` must outlive the index
  /// and must not be mutated while the index is in use (snapshots are
  /// immutable by contract; rebuild after mutating a private copy).
  explicit SnapshotIndex(const Goddag& g);

  /// One (hierarchy, tag)-restricted view of the attached nodes.
  struct Pool {
    /// Nodes in document order (== extent begin asc, end desc, with
    /// Goddag::Before tie-breaks).
    std::vector<NodeId> nodes;
    /// Parallel extent arrays (cache-friendly scans without chasing
    /// back into the arena).
    std::vector<size_t> begins;
    std::vector<size_t> ends;
    /// max_end[i] = max(ends[0..i]): scanning left from an upper bound
    /// stops as soon as no earlier entry can still reach the query.
    std::vector<size_t> max_end;
    /// Node ids re-sorted by extent end asc (for preceding ranges).
    std::vector<NodeId> by_end;
    /// Parallel end offsets for by_end.
    std::vector<size_t> end_keys;

    bool empty() const { return nodes.empty(); }
    size_t size() const { return nodes.size(); }
  };

  /// Element pool for hierarchy `hq` (kInvalidHierarchy = all) and
  /// `tag` (empty = any). Returns an empty pool for unknown
  /// combinations — never fails.
  const Pool& Elements(HierarchyId hq, std::string_view tag = {}) const;
  /// The shared leaf layer (content order == document order).
  const Pool& Leaves() const;

  // ------------------------------------------------------ O(1) relations
  /// Document-order position of an attached node (root, element, leaf);
  /// kUnranked for detached nodes.
  static constexpr uint32_t kUnranked = static_cast<uint32_t>(-1);
  uint32_t rank(NodeId node) const { return rank_[node]; }
  /// Document-order comparison via ranks; matches Goddag::Before for
  /// attached nodes.
  bool Before(NodeId a, NodeId b) const { return rank_[a] < rank_[b]; }
  /// Tree depth within the node's own hierarchy (root = 0, elements =
  /// 1 + parent depth, leaves = 1 + max parent depth over hierarchies).
  uint32_t depth(NodeId node) const { return depth_[node]; }
  /// Extent containment with equal-extent disambiguation — the same
  /// relation as the evaluator's naive Dominates, in O(1): `outer`
  /// dominates `inner` when inner's extent is strictly inside outer's,
  /// or extents are equal and `outer` is a tree ancestor of `inner`.
  bool Dominates(NodeId outer, NodeId inner) const;

  // -------------------------------------------------- axis primitives
  // All collectors append matching node ids to `*out` (callers own
  // deduplication and final document-order normalisation).

  /// Pool nodes dominated by `ctx` — the descendant axis over elements.
  void Dominated(const Pool& pool, NodeId ctx, std::vector<NodeId>* out) const;
  /// Pool nodes whose extent is contained in ctx's (equal allowed),
  /// excluding `ctx` itself — the descendant axis' leaf rule.
  void Contained(const Pool& pool, NodeId ctx, std::vector<NodeId>* out) const;
  /// Pool nodes dominating `ctx` — the ancestor axis over elements.
  void Dominating(const Pool& pool, NodeId ctx,
                  std::vector<NodeId>* out) const;
  /// Positional-pushdown variants of Dominated/Contained: the first or
  /// last pool node (in document order — pool order IS document order)
  /// the full collector would have appended, found without
  /// materialising the window. kInvalidNode when the window is empty.
  /// The evaluator uses these for compiled descendant steps whose
  /// leading predicate is [1] or [last()] (see xpath::StepPlan).
  NodeId DominatedFirst(const Pool& pool, NodeId ctx) const;
  NodeId DominatedLast(const Pool& pool, NodeId ctx) const;
  NodeId ContainedFirst(const Pool& pool, NodeId ctx) const;
  NodeId ContainedLast(const Pool& pool, NodeId ctx) const;

  /// Pool nodes whose extent starts at or after ctx's end, excluding
  /// equal-extent twins (zero-width contexts).
  void FollowingOf(const Pool& pool, NodeId ctx,
                   std::vector<NodeId>* out) const;
  /// Pool nodes whose extent ends at or before ctx's begin, excluding
  /// equal-extent twins. Appends in extent-end order, not document
  /// order.
  void PrecedingOf(const Pool& pool, NodeId ctx,
                   std::vector<NodeId>* out) const;
  /// Pool nodes properly overlapping `span`, excluding `ctx`.
  void OverlappingOf(const Pool& pool, const Interval& span, NodeId ctx,
                     std::vector<NodeId>* out) const;

  /// Sorts into document order by rank and removes duplicates
  /// (equivalent to Goddag::SortDocumentOrder for attached nodes).
  void SortDocumentOrder(std::vector<NodeId>* nodes) const;

  size_t num_ranked() const { return num_ranked_; }

 private:
  struct TagPools {
    Pool any;
    std::map<std::string, Pool, std::less<>> by_tag;
  };

  static void FinishPool(const Goddag& g, Pool* pool);
  /// The one containment scan behind Dominated/Contained First/Last:
  /// walks the window forward or backward and returns the first node
  /// passing the shared filter (`dominated` adds the equal-extent
  /// EqDominates rule; without it, equal extents are plain
  /// containment). Keeping a single copy is what guarantees the
  /// positional pushdown can never diverge from the full collectors.
  NodeId ScanContainment(const Pool& pool, NodeId ctx, bool from_back,
                         bool dominated) const;
  bool EqDominates(NodeId outer, NodeId inner) const {
    return eq_dominance_.count((static_cast<uint64_t>(outer) << 32) |
                               inner) != 0;
  }

  const Goddag* g_;
  /// Arena-indexed document-order ranks (kUnranked for detached nodes).
  std::vector<uint32_t> rank_;
  /// Arena-indexed tree depths.
  std::vector<uint32_t> depth_;
  size_t num_ranked_ = 0;
  /// layers_[0] = all hierarchies; layers_[h + 1] = hierarchy h.
  std::vector<TagPools> layers_;
  Pool leaves_;
  /// Packed (outer << 32 | inner) pairs of equal-extent nodes where
  /// outer is a tree ancestor of inner. Equal-extent groups are tiny in
  /// practice (co-extensive markup), so this stays near-empty.
  std::unordered_set<uint64_t> eq_dominance_;
};

}  // namespace cxml::goddag

#endif  // CXML_GODDAG_SNAPSHOT_INDEX_H_
