#ifndef CXML_GODDAG_BUILDER_H_
#define CXML_GODDAG_BUILDER_H_

#include <vector>

#include "cmh/distributed_document.h"
#include "common/result.h"
#include "goddag/goddag.h"

namespace cxml::goddag {

/// DOM-based GODDAG construction (paper §3): "we first divide the document
/// content into leaf nodes (fragments), where the borders are given by
/// markup positions from all hierarchies ... Each markup structure is
/// represented as an extended DOM tree ... then all trees are united at
/// the root and at the leaf level."
///
/// The streaming alternative is sacx::SacxParser; tests assert both
/// constructions produce isomorphic GODDAGs.
class Builder {
 public:
  /// Builds the GODDAG of a distributed document. The returned Goddag has
  /// the document's CMH bound.
  static Result<Goddag> Build(const cmh::DistributedDocument& doc);

 private:
  // NOTE: these helpers must always resolve the parent's child list
  // freshly through the Goddag — AllocNode grows the arena vectors, so a
  // cached reference/pointer into children_ dangles across allocations.
  static Status BuildHierarchy(Goddag* g, HierarchyId h,
                               const dom::Element& root);
  static Status AppendChild(Goddag* g, HierarchyId h, const dom::Node& node,
                            NodeId parent, size_t* offset);
  static Status AppendLeaves(Goddag* g, HierarchyId h, size_t begin,
                             size_t end, NodeId parent);
};

}  // namespace cxml::goddag

#endif  // CXML_GODDAG_BUILDER_H_
