#ifndef CXML_DTD_AUTOMATA_H_
#define CXML_DTD_AUTOMATA_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dtd/content_model.h"

namespace cxml::dtd {

/// Glushkov (position) automaton of a content model. States are
/// `0` (start) plus one state per name occurrence in the expression;
/// every transition into position `p` is labelled with `symbol(p)`.
///
/// The same NFA feeds three consumers:
///  * `Dfa` (subset construction) — strict content validation,
///  * `SubsequenceChecker` — the WebDB'04 *potential validity* test used by
///    the editor's prevalidation,
///  * determinism diagnostics (XML's "1-unambiguous" requirement).
class Nfa {
 public:
  /// Builds the Glushkov automaton for `model`.
  /// kEmpty yields the automaton of the empty word; kAny and kMixed yield
  /// `(n1|n2|...)*` over the allowed names (kAny uses a wildcard state,
  /// see `any()`).
  static Nfa FromContentModel(const ContentModel& model);

  /// Number of states (>= 1; state 0 is the start).
  int num_states() const { return static_cast<int>(accepting_.size()); }
  bool IsAccepting(int state) const { return accepting_[state]; }

  /// Symbol alphabet (element names). `SymbolId` is the index.
  int num_symbols() const { return static_cast<int>(symbols_.size()); }
  const std::string& symbol_name(int symbol) const { return symbols_[symbol]; }
  /// Returns -1 when `name` is not in the alphabet.
  int FindSymbol(std::string_view name) const;

  /// Outgoing transitions of `state` as (symbol, target) pairs.
  const std::vector<std::pair<int, int>>& transitions(int state) const {
    return transitions_[state];
  }

  /// True when the model was `ANY`: every name (known or not) is accepted
  /// in any order, and the automaton is the trivial one-state loop.
  bool any() const { return any_; }

  /// True iff the automaton is deterministic (no state has two outgoing
  /// transitions on the same symbol) — XML 1.0's determinism constraint on
  /// content models.
  bool IsDeterministic() const;

  /// True iff the language is non-empty (some accepting state reachable).
  bool LanguageNonEmpty() const;

 private:
  int AddSymbol(const std::string& name);

  std::vector<std::string> symbols_;
  std::map<std::string, int, std::less<>> symbol_ids_;
  std::vector<bool> accepting_;
  std::vector<std::vector<std::pair<int, int>>> transitions_;
  bool any_ = false;
};

/// Deterministic automaton (subset construction over `Nfa`) with a dense
/// transition table, used on the hot path of validation.
class Dfa {
 public:
  static Dfa FromNfa(const Nfa& nfa);

  int start() const { return 0; }
  /// -1 is the reject (dead) result.
  int Next(int state, int symbol) const {
    if (state < 0 || symbol < 0) return -1;
    return table_[static_cast<size_t>(state) * num_symbols_ +
                  static_cast<size_t>(symbol)];
  }
  bool IsAccepting(int state) const {
    return state >= 0 && accepting_[state];
  }
  int num_states() const { return static_cast<int>(accepting_.size()); }
  int num_symbols() const { return num_symbols_; }

  /// Runs the whole `sequence` of symbol ids; false on any dead step.
  bool Accepts(const std::vector<int>& sequence) const;

 private:
  size_t num_symbols_ = 0;
  std::vector<int> table_;
  std::vector<bool> accepting_;
};

/// Decides *potential validity* (Iacob, Dekhtyar & Dekhtyar, WebDB 2004):
/// whether a child sequence observed in a partially tagged document can be
/// extended — by inserting further elements anywhere — into a word of the
/// content model's language. Equivalently: is the sequence a subsequence
/// of some accepted word?
///
/// Implementation: simulate the Glushkov NFA closed under "skip" steps.
/// `closure(S)` is the set of states reachable from S via any number of
/// transitions (the inserted elements); between closures we take one real
/// transition per observed symbol.
class SubsequenceChecker {
 public:
  explicit SubsequenceChecker(const Nfa& nfa);

  /// True iff `symbol_ids` (possibly with ids of -1 for names outside the
  /// alphabet, which are never completable) is a subsequence of a word in
  /// the language.
  bool IsPotentiallyValid(const std::vector<int>& symbol_ids) const;

  /// Convenience overload mapping names through the NFA alphabet.
  bool IsPotentiallyValid(const Nfa& nfa,
                          const std::vector<std::string>& names) const;

 private:
  using StateSet = std::vector<uint64_t>;

  StateSet EmptySet() const;
  void Close(StateSet* set) const;
  bool AnyAccepting(const StateSet& set) const;

  int num_states_;
  bool any_;
  std::vector<bool> accepting_;
  /// reach_[q] = bitset of states reachable from q in >= 0 transitions.
  std::vector<StateSet> reach_;
  /// by_symbol_[a][q] = bitset of targets of q's transitions labelled a.
  std::vector<std::vector<StateSet>> by_symbol_;
};

}  // namespace cxml::dtd

#endif  // CXML_DTD_AUTOMATA_H_
