#include "dtd/validator.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "common/unicode.h"
#include "xml/chars.h"

namespace cxml::dtd {

const char* ValidationIssueKindToString(ValidationIssue::Kind kind) {
  switch (kind) {
    case ValidationIssue::Kind::kUndeclaredElement:
      return "UndeclaredElement";
    case ValidationIssue::Kind::kContentModelViolation:
      return "ContentModelViolation";
    case ValidationIssue::Kind::kUnexpectedText:
      return "UnexpectedText";
    case ValidationIssue::Kind::kUndeclaredAttribute:
      return "UndeclaredAttribute";
    case ValidationIssue::Kind::kMissingRequiredAttribute:
      return "MissingRequiredAttribute";
    case ValidationIssue::Kind::kBadAttributeValue:
      return "BadAttributeValue";
    case ValidationIssue::Kind::kDuplicateId:
      return "DuplicateId";
    case ValidationIssue::Kind::kUnresolvedIdRef:
      return "UnresolvedIdRef";
    case ValidationIssue::Kind::kRootMismatch:
      return "RootMismatch";
  }
  return "Unknown";
}

namespace {

bool IsNmToken(std::string_view value) {
  if (value.empty()) return false;
  size_t pos = 0;
  while (pos < value.size()) {
    DecodedChar d = DecodeUtf8(value, pos);
    if (!d.valid() || !xml::IsNameChar(d.code_point)) return false;
    pos += d.length;
  }
  return true;
}

std::vector<std::string_view> SplitTokens(std::string_view value) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < value.size()) {
    while (i < value.size() && value[i] == ' ') ++i;
    size_t begin = i;
    while (i < value.size() && value[i] != ' ') ++i;
    if (i > begin) tokens.push_back(value.substr(begin, i - begin));
  }
  return tokens;
}

}  // namespace

void DtdValidator::ValidateElement(
    const dom::Element& el, std::vector<ValidationIssue>* issues,
    std::vector<std::pair<std::string, const dom::Element*>>* ids,
    std::vector<std::pair<std::string, const dom::Element*>>* idrefs) const {
  const CompiledDtd::ElementAutomata* ea = compiled_->Find(el.tag());
  if (ea == nullptr) {
    issues->push_back({ValidationIssue::Kind::kUndeclaredElement,
                       StrCat("element '", el.tag(), "' is not declared"),
                       &el});
    // Still recurse so nested issues surface in one pass.
    for (const dom::Node* child : el.children()) {
      if (child->is_element()) {
        ValidateElement(static_cast<const dom::Element&>(*child), issues, ids,
                        idrefs);
      }
    }
    return;
  }
  const ElementDecl& decl = *ea->decl;

  // ---- content ----
  const ContentModel& model = decl.model;
  switch (model.kind) {
    case ContentKind::kEmpty: {
      if (!el.children().empty()) {
        issues->push_back({ValidationIssue::Kind::kContentModelViolation,
                           StrCat("element '", el.tag(),
                                  "' is declared EMPTY but has content"),
                           &el});
      }
      break;
    }
    case ContentKind::kAny: {
      // Children must merely be declared; checked on recursion.
      break;
    }
    case ContentKind::kMixed: {
      std::set<std::string_view> allowed(model.mixed_names.begin(),
                                         model.mixed_names.end());
      for (const dom::Node* child : el.children()) {
        if (child->is_element()) {
          const auto& c = static_cast<const dom::Element&>(*child);
          if (allowed.find(c.tag()) == allowed.end()) {
            issues->push_back(
                {ValidationIssue::Kind::kContentModelViolation,
                 StrCat("element '", c.tag(), "' not allowed in mixed ",
                        "content of '", el.tag(), "'"),
                 &el});
          }
        }
      }
      break;
    }
    case ContentKind::kChildren: {
      std::vector<int> symbols;
      bool bad_text = false;
      for (const dom::Node* child : el.children()) {
        if (child->is_element()) {
          symbols.push_back(ea->nfa.FindSymbol(
              static_cast<const dom::Element&>(*child).tag()));
        } else if (child->is_text() && !bad_text) {
          const auto& text = static_cast<const dom::Text&>(*child);
          if (!IsAllWhitespace(text.text())) {
            bad_text = true;
            issues->push_back(
                {ValidationIssue::Kind::kUnexpectedText,
                 StrCat("character data not allowed in element content of '",
                        el.tag(), "'"),
                 &el});
          }
        }
      }
      if (!ea->dfa.Accepts(symbols)) {
        std::string sequence;
        for (const dom::Node* child : el.children()) {
          if (child->is_element()) {
            if (!sequence.empty()) sequence += ',';
            sequence += static_cast<const dom::Element&>(*child).tag();
          }
        }
        issues->push_back(
            {ValidationIssue::Kind::kContentModelViolation,
             StrCat("children (", sequence, ") of '", el.tag(),
                    "' do not match content model ", model.ToString()),
             &el});
      }
      break;
    }
  }

  // ---- attributes ----
  for (const auto& att : el.attributes()) {
    const AttDef* def = decl.FindAttribute(att.name);
    if (def == nullptr) {
      // xml:* attributes are always permitted in this framework.
      if (!StartsWith(att.name, "xml:")) {
        issues->push_back({ValidationIssue::Kind::kUndeclaredAttribute,
                           StrCat("attribute '", att.name,
                                  "' of '", el.tag(), "' is not declared"),
                           &el});
      }
      continue;
    }
    switch (def->type) {
      case AttType::kId:
        if (!xml::IsValidName(att.value)) {
          issues->push_back({ValidationIssue::Kind::kBadAttributeValue,
                             StrCat("ID attribute '", att.name,
                                    "' has non-Name value '", att.value, "'"),
                             &el});
        } else {
          ids->emplace_back(att.value, &el);
        }
        break;
      case AttType::kIdRef:
        idrefs->emplace_back(att.value, &el);
        break;
      case AttType::kIdRefs:
        for (auto token : SplitTokens(att.value)) {
          idrefs->emplace_back(std::string(token), &el);
        }
        break;
      case AttType::kNmToken:
        if (!IsNmToken(att.value)) {
          issues->push_back({ValidationIssue::Kind::kBadAttributeValue,
                             StrCat("attribute '", att.name,
                                    "' must be an NMTOKEN, got '", att.value,
                                    "'"),
                             &el});
        }
        break;
      case AttType::kNmTokens:
        for (auto token : SplitTokens(att.value)) {
          if (!IsNmToken(token)) {
            issues->push_back({ValidationIssue::Kind::kBadAttributeValue,
                               StrCat("attribute '", att.name,
                                      "' contains a non-NMTOKEN '",
                                      std::string(token), "'"),
                               &el});
          }
        }
        break;
      case AttType::kEnumeration:
      case AttType::kNotation: {
        bool found = std::find(def->enum_values.begin(),
                               def->enum_values.end(),
                               att.value) != def->enum_values.end();
        if (!found) {
          issues->push_back({ValidationIssue::Kind::kBadAttributeValue,
                             StrCat("attribute '", att.name, "' value '",
                                    att.value, "' not in enumeration"),
                             &el});
        }
        break;
      }
      case AttType::kCData:
      case AttType::kEntity:
      case AttType::kEntities:
        break;
    }
    if (def->deflt == AttDefault::kFixed && att.value != def->default_value) {
      issues->push_back({ValidationIssue::Kind::kBadAttributeValue,
                         StrCat("attribute '", att.name, "' is #FIXED \"",
                                def->default_value, "\" but has value \"",
                                att.value, "\""),
                         &el});
    }
  }
  for (const auto& def : decl.attributes) {
    if (def.deflt == AttDefault::kRequired && !el.HasAttribute(def.name)) {
      issues->push_back({ValidationIssue::Kind::kMissingRequiredAttribute,
                         StrCat("required attribute '", def.name,
                                "' missing on '", el.tag(), "'"),
                         &el});
    }
  }

  for (const dom::Node* child : el.children()) {
    if (child->is_element()) {
      ValidateElement(static_cast<const dom::Element&>(*child), issues, ids,
                      idrefs);
    }
  }
}

std::vector<ValidationIssue> DtdValidator::Validate(
    const dom::Document& doc, std::string_view expected_root) const {
  std::vector<ValidationIssue> issues;
  const dom::Element* root = doc.root();
  if (root == nullptr) {
    issues.push_back({ValidationIssue::Kind::kRootMismatch,
                      "document has no root element", nullptr});
    return issues;
  }
  if (!expected_root.empty() && root->tag() != expected_root) {
    issues.push_back({ValidationIssue::Kind::kRootMismatch,
                      StrCat("root element is '", root->tag(),
                             "', expected '", std::string(expected_root),
                             "'"),
                      root});
  }
  std::vector<std::pair<std::string, const dom::Element*>> ids;
  std::vector<std::pair<std::string, const dom::Element*>> idrefs;
  ValidateElement(*root, &issues, &ids, &idrefs);

  std::set<std::string_view> id_set;
  for (const auto& [id, el] : ids) {
    if (!id_set.insert(id).second) {
      issues.push_back({ValidationIssue::Kind::kDuplicateId,
                        StrCat("duplicate ID '", id, "'"), el});
    }
  }
  for (const auto& [ref, el] : idrefs) {
    if (id_set.find(ref) == id_set.end()) {
      issues.push_back({ValidationIssue::Kind::kUnresolvedIdRef,
                        StrCat("IDREF '", ref, "' matches no ID"), el});
    }
  }
  return issues;
}

Status DtdValidator::Check(const dom::Document& doc,
                           std::string_view expected_root) const {
  std::vector<ValidationIssue> issues = Validate(doc, expected_root);
  if (issues.empty()) return Status::Ok();
  std::string message = issues.front().message;
  if (issues.size() > 1) {
    message += StrFormat(" (and %zu more issues)", issues.size() - 1);
  }
  return status::ValidationError(std::move(message));
}

}  // namespace cxml::dtd
