#include "dtd/automata.h"

#include <set>

namespace cxml::dtd {

namespace {

/// Scratch data for the Glushkov construction.
struct GlushkovBuild {
  /// 1-based position -> symbol id.
  std::vector<int> pos_symbol{-1};  // index 0 unused
  /// follow sets, 1-based.
  std::vector<std::set<int>> follow{{}};
};

struct Fln {
  std::set<int> first;
  std::set<int> last;
  bool nullable = false;
};

Fln ComputeGlushkov(const CmNode& node, Nfa* nfa, GlushkovBuild* build,
                    int (*add_symbol)(Nfa*, const std::string&));

}  // namespace

int Nfa::AddSymbol(const std::string& name) {
  auto it = symbol_ids_.find(name);
  if (it != symbol_ids_.end()) return it->second;
  int id = static_cast<int>(symbols_.size());
  symbols_.push_back(name);
  symbol_ids_.emplace(name, id);
  return id;
}

int Nfa::FindSymbol(std::string_view name) const {
  auto it = symbol_ids_.find(name);
  return it == symbol_ids_.end() ? -1 : it->second;
}

namespace {

Fln ComputeGlushkov(const CmNode& node, Nfa* nfa, GlushkovBuild* build,
                    int (*add_symbol)(Nfa*, const std::string&)) {
  Fln result;
  switch (node.op) {
    case CmOp::kName: {
      int symbol = add_symbol(nfa, node.name);
      int pos = static_cast<int>(build->pos_symbol.size());
      build->pos_symbol.push_back(symbol);
      build->follow.emplace_back();
      result.first = {pos};
      result.last = {pos};
      result.nullable = false;
      return result;
    }
    case CmOp::kSeq: {
      result.nullable = true;
      std::set<int> carry_last;  // last positions of the nullable-tail prefix
      bool first_open = true;    // still accumulating into result.first
      for (const CmNode& child : node.children) {
        Fln f = ComputeGlushkov(child, nfa, build, add_symbol);
        // follow: every last of the accumulated prefix connects to child's
        // first.
        for (int q : carry_last) {
          build->follow[static_cast<size_t>(q)].insert(f.first.begin(),
                                                       f.first.end());
        }
        if (first_open) {
          result.first.insert(f.first.begin(), f.first.end());
          if (!f.nullable) first_open = false;
        }
        if (f.nullable) {
          carry_last.insert(f.last.begin(), f.last.end());
        } else {
          carry_last = f.last;
        }
        result.nullable = result.nullable && f.nullable;
      }
      result.last = std::move(carry_last);
      return result;
    }
    case CmOp::kChoice: {
      result.nullable = false;
      for (const CmNode& child : node.children) {
        Fln f = ComputeGlushkov(child, nfa, build, add_symbol);
        result.first.insert(f.first.begin(), f.first.end());
        result.last.insert(f.last.begin(), f.last.end());
        result.nullable = result.nullable || f.nullable;
      }
      return result;
    }
    case CmOp::kOpt: {
      result = ComputeGlushkov(node.children.front(), nfa, build, add_symbol);
      result.nullable = true;
      return result;
    }
    case CmOp::kStar:
    case CmOp::kPlus: {
      result = ComputeGlushkov(node.children.front(), nfa, build, add_symbol);
      for (int q : result.last) {
        build->follow[static_cast<size_t>(q)].insert(result.first.begin(),
                                                     result.first.end());
      }
      if (node.op == CmOp::kStar) result.nullable = true;
      return result;
    }
  }
  return result;
}

}  // namespace

Nfa Nfa::FromContentModel(const ContentModel& model) {
  Nfa nfa;
  switch (model.kind) {
    case ContentKind::kEmpty: {
      nfa.accepting_ = {true};
      nfa.transitions_.resize(1);
      return nfa;
    }
    case ContentKind::kAny: {
      nfa.any_ = true;
      nfa.accepting_ = {true};
      nfa.transitions_.resize(1);
      return nfa;
    }
    case ContentKind::kMixed: {
      // (n1 | n2 | ...)*: one accepting state with a self-loop per name.
      nfa.accepting_ = {true};
      nfa.transitions_.resize(1);
      for (const std::string& name : model.mixed_names) {
        int symbol = nfa.AddSymbol(name);
        nfa.transitions_[0].emplace_back(symbol, 0);
      }
      return nfa;
    }
    case ContentKind::kChildren: {
      GlushkovBuild build;
      // Captureless lambda defined in member scope: may touch AddSymbol.
      auto add_symbol = [](Nfa* n, const std::string& name) {
        return n->AddSymbol(name);
      };
      Fln root = ComputeGlushkov(model.expr, &nfa, &build, +add_symbol);
      int num_positions = static_cast<int>(build.pos_symbol.size()) - 1;
      nfa.accepting_.assign(static_cast<size_t>(num_positions) + 1, false);
      nfa.transitions_.resize(static_cast<size_t>(num_positions) + 1);
      nfa.accepting_[0] = root.nullable;
      for (int p : root.last) nfa.accepting_[static_cast<size_t>(p)] = true;
      for (int p : root.first) {
        nfa.transitions_[0].emplace_back(
            build.pos_symbol[static_cast<size_t>(p)], p);
      }
      for (int p = 1; p <= num_positions; ++p) {
        for (int q : build.follow[static_cast<size_t>(p)]) {
          nfa.transitions_[static_cast<size_t>(p)].emplace_back(
              build.pos_symbol[static_cast<size_t>(q)], q);
        }
      }
      return nfa;
    }
  }
  return nfa;
}

bool Nfa::IsDeterministic() const {
  for (const auto& trans : transitions_) {
    std::set<int> seen;
    for (const auto& [symbol, target] : trans) {
      (void)target;
      if (!seen.insert(symbol).second) return false;
    }
  }
  return true;
}

bool Nfa::LanguageNonEmpty() const {
  std::vector<bool> visited(static_cast<size_t>(num_states()), false);
  std::vector<int> stack = {0};
  visited[0] = true;
  while (!stack.empty()) {
    int q = stack.back();
    stack.pop_back();
    if (accepting_[static_cast<size_t>(q)]) return true;
    for (const auto& [symbol, target] : transitions_[static_cast<size_t>(q)]) {
      (void)symbol;
      if (!visited[static_cast<size_t>(target)]) {
        visited[static_cast<size_t>(target)] = true;
        stack.push_back(target);
      }
    }
  }
  return false;
}

Dfa Dfa::FromNfa(const Nfa& nfa) {
  Dfa dfa;
  dfa.num_symbols_ = static_cast<size_t>(nfa.num_symbols());

  std::map<std::vector<int>, int> subset_ids;
  std::vector<std::vector<int>> subsets;
  auto intern = [&](std::vector<int> subset) -> int {
    auto it = subset_ids.find(subset);
    if (it != subset_ids.end()) return it->second;
    int id = static_cast<int>(subsets.size());
    subset_ids.emplace(subset, id);
    subsets.push_back(std::move(subset));
    return id;
  };

  intern({0});
  for (size_t work = 0; work < subsets.size(); ++work) {
    // Per-symbol target subsets.
    std::vector<std::set<int>> targets(dfa.num_symbols_);
    for (int q : subsets[work]) {
      for (const auto& [symbol, target] : nfa.transitions(q)) {
        targets[static_cast<size_t>(symbol)].insert(target);
      }
    }
    dfa.table_.resize((work + 1) * dfa.num_symbols_, -1);
    for (size_t a = 0; a < dfa.num_symbols_; ++a) {
      if (targets[a].empty()) {
        dfa.table_[work * dfa.num_symbols_ + a] = -1;
      } else {
        std::vector<int> subset(targets[a].begin(), targets[a].end());
        dfa.table_[work * dfa.num_symbols_ + a] = intern(std::move(subset));
      }
    }
  }
  // Sizing note: table_ rows were appended as subsets were discovered, so
  // resize once more in case the last discovered states added rows.
  dfa.table_.resize(subsets.size() * dfa.num_symbols_, -1);

  dfa.accepting_.resize(subsets.size(), false);
  for (size_t i = 0; i < subsets.size(); ++i) {
    for (int q : subsets[i]) {
      if (nfa.IsAccepting(q)) {
        dfa.accepting_[i] = true;
        break;
      }
    }
  }
  return dfa;
}

bool Dfa::Accepts(const std::vector<int>& sequence) const {
  int state = start();
  for (int symbol : sequence) {
    state = Next(state, symbol);
    if (state < 0) return false;
  }
  return IsAccepting(state);
}

SubsequenceChecker::SubsequenceChecker(const Nfa& nfa)
    : num_states_(nfa.num_states()), any_(nfa.any()) {
  accepting_.resize(static_cast<size_t>(num_states_));
  for (int q = 0; q < num_states_; ++q) {
    accepting_[static_cast<size_t>(q)] = nfa.IsAccepting(q);
  }

  const size_t words = (static_cast<size_t>(num_states_) + 63) / 64;
  auto make_set = [&] { return StateSet(words, 0); };
  auto set_bit = [](StateSet* s, int q) {
    (*s)[static_cast<size_t>(q) / 64] |= uint64_t{1}
                                         << (static_cast<size_t>(q) % 64);
  };

  // Per-symbol transition bitsets.
  by_symbol_.assign(static_cast<size_t>(nfa.num_symbols()), {});
  for (auto& per_state : by_symbol_) {
    per_state.assign(static_cast<size_t>(num_states_), make_set());
  }
  for (int q = 0; q < num_states_; ++q) {
    for (const auto& [symbol, target] : nfa.transitions(q)) {
      set_bit(&by_symbol_[static_cast<size_t>(symbol)][static_cast<size_t>(q)],
              target);
    }
  }

  // reach_[q]: DFS from q over all transitions, q itself included.
  reach_.assign(static_cast<size_t>(num_states_), make_set());
  for (int q = 0; q < num_states_; ++q) {
    std::vector<bool> visited(static_cast<size_t>(num_states_), false);
    std::vector<int> stack = {q};
    visited[static_cast<size_t>(q)] = true;
    while (!stack.empty()) {
      int s = stack.back();
      stack.pop_back();
      set_bit(&reach_[static_cast<size_t>(q)], s);
      for (const auto& [symbol, target] : nfa.transitions(s)) {
        (void)symbol;
        if (!visited[static_cast<size_t>(target)]) {
          visited[static_cast<size_t>(target)] = true;
          stack.push_back(target);
        }
      }
    }
  }
}

SubsequenceChecker::StateSet SubsequenceChecker::EmptySet() const {
  return StateSet((static_cast<size_t>(num_states_) + 63) / 64, 0);
}

void SubsequenceChecker::Close(StateSet* set) const {
  StateSet closed = *set;
  for (int q = 0; q < num_states_; ++q) {
    if ((*set)[static_cast<size_t>(q) / 64] &
        (uint64_t{1} << (static_cast<size_t>(q) % 64))) {
      const StateSet& r = reach_[static_cast<size_t>(q)];
      for (size_t w = 0; w < closed.size(); ++w) closed[w] |= r[w];
    }
  }
  *set = std::move(closed);
}

bool SubsequenceChecker::AnyAccepting(const StateSet& set) const {
  for (int q = 0; q < num_states_; ++q) {
    if (accepting_[static_cast<size_t>(q)] &&
        (set[static_cast<size_t>(q) / 64] &
         (uint64_t{1} << (static_cast<size_t>(q) % 64)))) {
      return true;
    }
  }
  return false;
}

bool SubsequenceChecker::IsPotentiallyValid(
    const std::vector<int>& symbol_ids) const {
  if (any_) return true;
  StateSet current = EmptySet();
  current[0] = 1;  // state 0
  Close(&current);
  for (int symbol : symbol_ids) {
    if (symbol < 0) return false;  // name outside the model's alphabet
    StateSet next = EmptySet();
    const auto& per_state = by_symbol_[static_cast<size_t>(symbol)];
    for (int q = 0; q < num_states_; ++q) {
      if (current[static_cast<size_t>(q) / 64] &
          (uint64_t{1} << (static_cast<size_t>(q) % 64))) {
        const StateSet& t = per_state[static_cast<size_t>(q)];
        for (size_t w = 0; w < next.size(); ++w) next[w] |= t[w];
      }
    }
    Close(&next);
    current = std::move(next);
    bool empty = true;
    for (uint64_t w : current) {
      if (w != 0) {
        empty = false;
        break;
      }
    }
    if (empty) return false;
  }
  return AnyAccepting(current);
}

bool SubsequenceChecker::IsPotentiallyValid(
    const Nfa& nfa, const std::vector<std::string>& names) const {
  std::vector<int> ids;
  ids.reserve(names.size());
  for (const auto& name : names) ids.push_back(nfa.FindSymbol(name));
  return IsPotentiallyValid(ids);
}

}  // namespace cxml::dtd
