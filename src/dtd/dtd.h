#ifndef CXML_DTD_DTD_H_
#define CXML_DTD_DTD_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dtd/automata.h"
#include "dtd/content_model.h"

namespace cxml::dtd {

/// DTD attribute types (XML 1.0 §3.3.1).
enum class AttType {
  kCData,
  kId,
  kIdRef,
  kIdRefs,
  kNmToken,
  kNmTokens,
  kEnumeration,
  kEntity,
  kEntities,
  kNotation,
};

/// DTD attribute default kinds.
enum class AttDefault {
  kRequired,  ///< #REQUIRED
  kImplied,   ///< #IMPLIED
  kFixed,     ///< #FIXED "value"
  kValue,     ///< "value"
};

/// One attribute definition from an `<!ATTLIST>` declaration.
struct AttDef {
  std::string name;
  AttType type = AttType::kCData;
  AttDefault deflt = AttDefault::kImplied;
  std::string default_value;
  std::vector<std::string> enum_values;  ///< for kEnumeration / kNotation
};

/// One `<!ELEMENT>` declaration plus its accumulated `<!ATTLIST>` entries.
struct ElementDecl {
  std::string name;
  ContentModel model;
  std::vector<AttDef> attributes;

  const AttDef* FindAttribute(std::string_view attr_name) const {
    for (const auto& a : attributes) {
      if (a.name == attr_name) return &a;
    }
    return nullptr;
  }
};

/// A parsed Document Type Definition: the markup vocabulary of one
/// hierarchy in the paper's model ("a concurrent markup hierarchy is a
/// collection of DTD elements that are not in conflict with each other").
class Dtd {
 public:
  /// Adds a declaration; duplicate element names are an error per XML 1.0.
  Status AddElement(ElementDecl decl);
  /// Merges attribute definitions into an existing (or pending) element.
  /// XML allows ATTLIST before ELEMENT, so unknown elements are created
  /// with an implicit ANY model that a later ELEMENT declaration refines.
  Status AddAttList(const std::string& element_name,
                    std::vector<AttDef> attributes);
  void AddEntity(std::string name, std::string value);

  const ElementDecl* FindElement(std::string_view name) const;
  bool HasElement(std::string_view name) const {
    return FindElement(name) != nullptr;
  }
  const std::map<std::string, ElementDecl, std::less<>>& elements() const {
    return elements_;
  }
  const std::map<std::string, std::string>& entities() const {
    return entities_;
  }

  /// All declared element names (sorted).
  std::vector<std::string> ElementNames() const;

  /// Serialises back to DTD source text (one declaration per line).
  std::string ToString() const;

 private:
  std::map<std::string, ElementDecl, std::less<>> elements_;
  /// Elements seen only via ATTLIST; must be declared before validation.
  std::map<std::string, bool, std::less<>> attlist_only_;
  std::map<std::string, std::string> entities_;
};

/// Compiled automata for every element of a DTD, shared by the strict
/// validator and the editor's prevalidation. Build once, query often.
class CompiledDtd {
 public:
  /// Compiles all content models. Reports non-deterministic content models
  /// (XML 1.0 determinism constraint) as ValidationError.
  static Result<CompiledDtd> Compile(const Dtd& dtd);

  struct ElementAutomata {
    const ElementDecl* decl = nullptr;
    Nfa nfa;
    Dfa dfa;
    std::unique_ptr<SubsequenceChecker> subsequence;
  };

  const ElementAutomata* Find(std::string_view element_name) const;
  const Dtd& dtd() const { return *dtd_; }

 private:
  const Dtd* dtd_ = nullptr;
  std::map<std::string, ElementAutomata, std::less<>> automata_;
};

/// Parses DTD source text: a sequence of `<!ELEMENT>`, `<!ATTLIST>`,
/// `<!ENTITY>` declarations, comments and PIs (the syntax of an internal
/// subset or a standalone .dtd file). Parameter entities and conditional
/// sections are out of scope (documented limitation) and reported as
/// Unimplemented.
Result<Dtd> ParseDtd(std::string_view input);

}  // namespace cxml::dtd

#endif  // CXML_DTD_DTD_H_
