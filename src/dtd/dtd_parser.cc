#include "common/strings.h"
#include "common/unicode.h"
#include "dtd/dtd.h"
#include "xml/chars.h"

namespace cxml::dtd {

namespace {

/// Scanner over DTD declaration text (internal subset or .dtd content).
class DtdScanner {
 public:
  explicit DtdScanner(std::string_view input) : input_(input) {}

  Result<Dtd> Parse() {
    Dtd dtd;
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) break;
      if (Consume("<!--")) {
        CXML_RETURN_IF_ERROR(SkipUntil("-->", "comment"));
      } else if (Consume("<?")) {
        CXML_RETURN_IF_ERROR(SkipUntil("?>", "processing instruction"));
      } else if (Consume("<!ELEMENT")) {
        CXML_RETURN_IF_ERROR(ParseElement(&dtd));
      } else if (Consume("<!ATTLIST")) {
        CXML_RETURN_IF_ERROR(ParseAttList(&dtd));
      } else if (Consume("<!ENTITY")) {
        CXML_RETURN_IF_ERROR(ParseEntity(&dtd));
      } else if (Consume("<!NOTATION")) {
        CXML_RETURN_IF_ERROR(SkipUntil(">", "NOTATION declaration"));
      } else if (Peek() == '%') {
        return status::Unimplemented(
            "parameter entities are not supported by this framework");
      } else if (Consume("<![")) {
        return status::Unimplemented(
            "conditional sections are not supported by this framework");
      } else {
        return status::ParseError(StrCat("unexpected DTD content: '",
                                         input_.substr(pos_, 20), "'"));
      }
    }
    return dtd;
  }

 private:
  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < input_.size() && xml::IsSpace(input_[pos_])) ++pos_;
  }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Status SkipUntil(std::string_view token, std::string_view what) {
    size_t found = input_.find(token, pos_);
    if (found == std::string_view::npos) {
      return status::ParseError(StrCat("unterminated ", what, " in DTD"));
    }
    pos_ = found + token.size();
    return Status::Ok();
  }

  Result<std::string> ScanName() {
    SkipSpace();
    size_t begin = pos_;
    while (pos_ < input_.size()) {
      DecodedChar d = DecodeUtf8(input_, pos_);
      if (!d.valid()) break;
      if (begin == pos_ ? !xml::IsNameStartChar(d.code_point)
                        : !xml::IsNameChar(d.code_point)) {
        break;
      }
      pos_ += d.length;
    }
    if (pos_ == begin) {
      return status::ParseError(
          StrCat("expected name in DTD declaration near '",
                 input_.substr(begin, 20), "'"));
    }
    return std::string(input_.substr(begin, pos_ - begin));
  }

  Result<std::string> ScanQuoted() {
    SkipSpace();
    if (Peek() != '"' && Peek() != '\'') {
      return status::ParseError("expected quoted literal in DTD");
    }
    char quote = input_[pos_++];
    size_t begin = pos_;
    size_t end = input_.find(quote, pos_);
    if (end == std::string_view::npos) {
      return status::ParseError("unterminated literal in DTD");
    }
    pos_ = end + 1;
    return std::string(input_.substr(begin, end - begin));
  }

  Status ParseElement(Dtd* dtd) {
    CXML_ASSIGN_OR_RETURN(std::string name, ScanName());
    SkipSpace();
    size_t spec_begin = pos_;
    size_t gt = input_.find('>', pos_);
    if (gt == std::string_view::npos) {
      return status::ParseError(
          StrCat("unterminated ELEMENT declaration for '", name, "'"));
    }
    std::string_view spec = input_.substr(spec_begin, gt - spec_begin);
    pos_ = gt + 1;
    auto model = ParseContentModel(spec);
    if (!model.ok()) {
      return model.status().WithContext(
          StrCat("in ELEMENT declaration for '", name, "'"));
    }
    ElementDecl decl;
    decl.name = std::move(name);
    decl.model = std::move(model).value();
    return dtd->AddElement(std::move(decl));
  }

  Result<AttDef> ParseAttDef() {
    AttDef def;
    CXML_ASSIGN_OR_RETURN(def.name, ScanName());
    SkipSpace();
    if (Peek() == '(') {
      // Enumeration: (tok1 | tok2 | ...).
      ++pos_;
      def.type = AttType::kEnumeration;
      while (true) {
        CXML_ASSIGN_OR_RETURN(std::string tok, ScanName());
        def.enum_values.push_back(std::move(tok));
        SkipSpace();
        if (Peek() == '|') {
          ++pos_;
          continue;
        }
        if (Peek() == ')') {
          ++pos_;
          break;
        }
        return status::ParseError("expected '|' or ')' in enumeration");
      }
    } else {
      CXML_ASSIGN_OR_RETURN(std::string type_name, ScanName());
      if (type_name == "CDATA") {
        def.type = AttType::kCData;
      } else if (type_name == "ID") {
        def.type = AttType::kId;
      } else if (type_name == "IDREF") {
        def.type = AttType::kIdRef;
      } else if (type_name == "IDREFS") {
        def.type = AttType::kIdRefs;
      } else if (type_name == "NMTOKEN") {
        def.type = AttType::kNmToken;
      } else if (type_name == "NMTOKENS") {
        def.type = AttType::kNmTokens;
      } else if (type_name == "ENTITY") {
        def.type = AttType::kEntity;
      } else if (type_name == "ENTITIES") {
        def.type = AttType::kEntities;
      } else if (type_name == "NOTATION") {
        def.type = AttType::kNotation;
        SkipSpace();
        if (Peek() != '(') {
          return status::ParseError("NOTATION type requires an enumeration");
        }
        ++pos_;
        while (true) {
          CXML_ASSIGN_OR_RETURN(std::string tok, ScanName());
          def.enum_values.push_back(std::move(tok));
          SkipSpace();
          if (Peek() == '|') {
            ++pos_;
            continue;
          }
          if (Peek() == ')') {
            ++pos_;
            break;
          }
          return status::ParseError("expected '|' or ')' in NOTATION list");
        }
      } else {
        return status::ParseError(
            StrCat("unknown attribute type '", type_name, "'"));
      }
    }
    SkipSpace();
    if (Consume("#REQUIRED")) {
      def.deflt = AttDefault::kRequired;
    } else if (Consume("#IMPLIED")) {
      def.deflt = AttDefault::kImplied;
    } else if (Consume("#FIXED")) {
      def.deflt = AttDefault::kFixed;
      CXML_ASSIGN_OR_RETURN(def.default_value, ScanQuoted());
    } else {
      def.deflt = AttDefault::kValue;
      CXML_ASSIGN_OR_RETURN(def.default_value, ScanQuoted());
    }
    return def;
  }

  Status ParseAttList(Dtd* dtd) {
    CXML_ASSIGN_OR_RETURN(std::string element_name, ScanName());
    std::vector<AttDef> defs;
    while (true) {
      SkipSpace();
      if (Peek() == '>') {
        ++pos_;
        break;
      }
      if (pos_ >= input_.size()) {
        return status::ParseError(
            StrCat("unterminated ATTLIST for '", element_name, "'"));
      }
      CXML_ASSIGN_OR_RETURN(AttDef def, ParseAttDef());
      defs.push_back(std::move(def));
    }
    return dtd->AddAttList(element_name, std::move(defs));
  }

  Status ParseEntity(Dtd* dtd) {
    SkipSpace();
    if (Peek() == '%') {
      return status::Unimplemented(
          "parameter entities are not supported by this framework");
    }
    CXML_ASSIGN_OR_RETURN(std::string name, ScanName());
    SkipSpace();
    if (Peek() == '"' || Peek() == '\'') {
      CXML_ASSIGN_OR_RETURN(std::string value, ScanQuoted());
      dtd->AddEntity(std::move(name), std::move(value));
    } else {
      // External entity (SYSTEM/PUBLIC): recorded as unavailable.
      return status::Unimplemented(
          StrCat("external entity '", name,
                 "' requires fetching, which this framework does not do"));
    }
    SkipSpace();
    if (!Consume(">")) {
      return status::ParseError("expected '>' closing ENTITY declaration");
    }
    return Status::Ok();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Dtd> ParseDtd(std::string_view input) {
  DtdScanner scanner(input);
  return scanner.Parse();
}

}  // namespace cxml::dtd
