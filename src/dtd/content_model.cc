#include "dtd/content_model.h"

#include <set>

#include "common/strings.h"
#include "xml/chars.h"

namespace cxml::dtd {

namespace {

/// Recursive-descent parser for the element-content grammar:
///   cp       ::= (name | choice | seq) ('?' | '*' | '+')?
///   choice   ::= '(' cp ('|' cp)+ ')'
///   seq      ::= '(' cp (',' cp)* ')'
class CmParser {
 public:
  explicit CmParser(std::string_view input) : input_(input) {}

  Result<CmNode> Parse() {
    SkipSpace();
    CXML_ASSIGN_OR_RETURN(CmNode node, ParseCp());
    SkipSpace();
    if (pos_ != input_.size()) {
      return status::ParseError(
          StrCat("trailing characters in content model: '",
                 input_.substr(pos_), "'"));
    }
    return node;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() && xml::IsSpace(input_[pos_])) ++pos_;
  }

  bool ConsumeIf(char c) {
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<CmNode> ParseCp() {
    SkipSpace();
    CmNode base;
    if (ConsumeIf('(')) {
      CXML_ASSIGN_OR_RETURN(base, ParseGroupBody());
    } else {
      CXML_ASSIGN_OR_RETURN(std::string name, ParseName());
      base = CmNode::Name(std::move(name));
    }
    if (ConsumeIf('?')) return CmNode::Unary(CmOp::kOpt, std::move(base));
    if (ConsumeIf('*')) return CmNode::Unary(CmOp::kStar, std::move(base));
    if (ConsumeIf('+')) return CmNode::Unary(CmOp::kPlus, std::move(base));
    return base;
  }

  /// Called after '(' was consumed; consumes through the matching ')'.
  Result<CmNode> ParseGroupBody() {
    std::vector<CmNode> items;
    CXML_ASSIGN_OR_RETURN(CmNode first, ParseCp());
    items.push_back(std::move(first));
    SkipSpace();
    char sep = '\0';
    while (!ConsumeIf(')')) {
      char c = pos_ < input_.size() ? input_[pos_] : '\0';
      if (c != '|' && c != ',') {
        return status::ParseError(
            "expected '|', ',' or ')' in content model group");
      }
      if (sep == '\0') {
        sep = c;
      } else if (sep != c) {
        return status::ParseError(
            "content model group mixes ',' and '|' separators");
      }
      ++pos_;
      CXML_ASSIGN_OR_RETURN(CmNode item, ParseCp());
      items.push_back(std::move(item));
      SkipSpace();
    }
    if (items.size() == 1) return std::move(items[0]);
    return sep == '|' ? CmNode::Choice(std::move(items))
                      : CmNode::Seq(std::move(items));
  }

  Result<std::string> ParseName() {
    SkipSpace();
    size_t begin = pos_;
    while (pos_ < input_.size() && !xml::IsSpace(input_[pos_]) &&
           input_[pos_] != '(' && input_[pos_] != ')' && input_[pos_] != '|' &&
           input_[pos_] != ',' && input_[pos_] != '?' && input_[pos_] != '*' &&
           input_[pos_] != '+') {
      ++pos_;
    }
    std::string name(input_.substr(begin, pos_ - begin));
    if (!xml::IsValidName(name)) {
      return status::ParseError(
          StrCat("invalid name in content model: '", name, "'"));
    }
    return name;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void AppendCm(const CmNode& node, std::string* out) {
  switch (node.op) {
    case CmOp::kName:
      out->append(node.name);
      break;
    case CmOp::kSeq:
    case CmOp::kChoice: {
      out->push_back('(');
      const char* sep = node.op == CmOp::kSeq ? "," : "|";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out->append(sep);
        AppendCm(node.children[i], out);
      }
      out->push_back(')');
      break;
    }
    case CmOp::kOpt:
    case CmOp::kStar:
    case CmOp::kPlus: {
      const CmNode& child = node.children.front();
      // Parenthesise non-atomic operands so the output re-parses.
      if (child.op == CmOp::kName) {
        AppendCm(child, out);
      } else if (child.op == CmOp::kSeq || child.op == CmOp::kChoice) {
        AppendCm(child, out);  // already parenthesised
      } else {
        out->push_back('(');
        AppendCm(child, out);
        out->push_back(')');
      }
      out->push_back(node.op == CmOp::kOpt    ? '?'
                     : node.op == CmOp::kStar ? '*'
                                              : '+');
      break;
    }
  }
}

void CollectNames(const CmNode& node, std::set<std::string>* out) {
  if (node.op == CmOp::kName) {
    out->insert(node.name);
    return;
  }
  for (const CmNode& child : node.children) CollectNames(child, out);
}

}  // namespace

std::string ContentModel::ToString() const {
  switch (kind) {
    case ContentKind::kEmpty:
      return "EMPTY";
    case ContentKind::kAny:
      return "ANY";
    case ContentKind::kMixed: {
      if (mixed_names.empty()) return "(#PCDATA)";
      std::string out = "(#PCDATA";
      for (const auto& n : mixed_names) {
        out += '|';
        out += n;
      }
      out += ")*";
      return out;
    }
    case ContentKind::kChildren: {
      std::string out;
      // Top level of element content is always a parenthesised group.
      if (expr.op == CmOp::kName || expr.op == CmOp::kOpt ||
          expr.op == CmOp::kStar || expr.op == CmOp::kPlus) {
        out.push_back('(');
        AppendCm(expr, &out);
        out.push_back(')');
      } else {
        AppendCm(expr, &out);
      }
      return out;
    }
  }
  return "ANY";
}

std::vector<std::string> ContentModel::ReferencedNames() const {
  std::set<std::string> names;
  if (kind == ContentKind::kMixed) {
    names.insert(mixed_names.begin(), mixed_names.end());
  } else if (kind == ContentKind::kChildren) {
    CollectNames(expr, &names);
  }
  return {names.begin(), names.end()};
}

Result<ContentModel> ParseContentModel(std::string_view spec) {
  std::string_view s = StripWhitespace(spec);
  ContentModel model;
  if (s == "EMPTY") {
    model.kind = ContentKind::kEmpty;
    return model;
  }
  if (s == "ANY") {
    model.kind = ContentKind::kAny;
    return model;
  }
  if (s.empty() || s.front() != '(') {
    return status::ParseError(
        StrCat("content model must be EMPTY, ANY or a group: '",
               std::string(s), "'"));
  }

  // Mixed content: ( #PCDATA ... .
  size_t after_paren = 1;
  while (after_paren < s.size() && xml::IsSpace(s[after_paren])) ++after_paren;
  if (s.substr(after_paren, 7) == "#PCDATA") {
    model.kind = ContentKind::kMixed;
    size_t i = after_paren + 7;
    while (true) {
      while (i < s.size() && xml::IsSpace(s[i])) ++i;
      if (i >= s.size()) {
        return status::ParseError("unterminated mixed content model");
      }
      if (s[i] == ')') {
        ++i;
        break;
      }
      if (s[i] != '|') {
        return status::ParseError(
            "expected '|' or ')' in mixed content model");
      }
      ++i;
      while (i < s.size() && xml::IsSpace(s[i])) ++i;
      size_t name_begin = i;
      while (i < s.size() && !xml::IsSpace(s[i]) && s[i] != '|' &&
             s[i] != ')') {
        ++i;
      }
      std::string name(s.substr(name_begin, i - name_begin));
      if (!xml::IsValidName(name)) {
        return status::ParseError(
            StrCat("invalid name in mixed content: '", name, "'"));
      }
      model.mixed_names.push_back(std::move(name));
    }
    // XML requires the trailing '*' whenever names are listed.
    std::string_view rest = StripWhitespace(s.substr(i));
    if (!model.mixed_names.empty() && rest != "*") {
      return status::ParseError(
          "mixed content with names must end with ')*'");
    }
    if (model.mixed_names.empty() && !(rest.empty() || rest == "*")) {
      return status::ParseError("trailing characters after (#PCDATA)");
    }
    return model;
  }

  model.kind = ContentKind::kChildren;
  CmParser parser(s);
  CXML_ASSIGN_OR_RETURN(model.expr, parser.Parse());
  return model;
}

}  // namespace cxml::dtd
