#ifndef CXML_DTD_VALIDATOR_H_
#define CXML_DTD_VALIDATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dom/document.h"
#include "dtd/dtd.h"

namespace cxml::dtd {

/// One validity violation found by the validator.
struct ValidationIssue {
  enum class Kind {
    kUndeclaredElement,
    kContentModelViolation,
    kUnexpectedText,
    kUndeclaredAttribute,
    kMissingRequiredAttribute,
    kBadAttributeValue,
    kDuplicateId,
    kUnresolvedIdRef,
    kRootMismatch,
  };
  Kind kind;
  std::string message;
  /// Element at which the issue was detected (owned by the validated doc).
  const dom::Element* element = nullptr;
};

const char* ValidationIssueKindToString(ValidationIssue::Kind kind);

/// DTD validator over DOM trees. Used directly for single-hierarchy
/// documents and, through the GODDAG per-hierarchy serialisation, for each
/// hierarchy of a concurrent document.
class DtdValidator {
 public:
  /// `compiled` must outlive the validator.
  explicit DtdValidator(const CompiledDtd& compiled) : compiled_(&compiled) {}

  /// Validates the whole document. Returns the issue list (empty = valid).
  /// `expected_root`: when non-empty, the document element must match.
  std::vector<ValidationIssue> Validate(const dom::Document& doc,
                                        std::string_view expected_root = {})
      const;

  /// Convenience: Ok iff `Validate` returns no issues; otherwise a
  /// ValidationError carrying the first few issues.
  Status Check(const dom::Document& doc,
               std::string_view expected_root = {}) const;

 private:
  void ValidateElement(const dom::Element& el,
                       std::vector<ValidationIssue>* issues,
                       std::vector<std::pair<std::string,
                                             const dom::Element*>>* ids,
                       std::vector<std::pair<std::string,
                                             const dom::Element*>>* idrefs)
      const;

  const CompiledDtd* compiled_;
};

}  // namespace cxml::dtd

#endif  // CXML_DTD_VALIDATOR_H_
