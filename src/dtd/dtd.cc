#include "dtd/dtd.h"

#include "common/strings.h"
#include "xml/chars.h"

namespace cxml::dtd {

Status Dtd::AddElement(ElementDecl decl) {
  auto it = elements_.find(decl.name);
  if (it != elements_.end()) {
    auto pending = attlist_only_.find(decl.name);
    if (pending == attlist_only_.end()) {
      return status::ValidationError(
          StrCat("element '", decl.name, "' declared twice"));
    }
    // The element existed only to hold early ATTLIST entries; adopt them.
    decl.attributes.insert(decl.attributes.end(),
                           it->second.attributes.begin(),
                           it->second.attributes.end());
    attlist_only_.erase(pending);
    it->second = std::move(decl);
    return Status::Ok();
  }
  std::string name = decl.name;
  elements_.emplace(std::move(name), std::move(decl));
  return Status::Ok();
}

Status Dtd::AddAttList(const std::string& element_name,
                       std::vector<AttDef> attributes) {
  auto it = elements_.find(element_name);
  if (it == elements_.end()) {
    ElementDecl pending;
    pending.name = element_name;
    pending.model.kind = ContentKind::kAny;
    pending.attributes = std::move(attributes);
    elements_.emplace(element_name, std::move(pending));
    attlist_only_.emplace(element_name, true);
    return Status::Ok();
  }
  for (auto& att : attributes) {
    // XML 1.0: the first declaration of an attribute is binding; later
    // re-declarations are ignored.
    if (it->second.FindAttribute(att.name) == nullptr) {
      it->second.attributes.push_back(std::move(att));
    }
  }
  return Status::Ok();
}

void Dtd::AddEntity(std::string name, std::string value) {
  // First declaration wins, as per XML 1.0.
  entities_.emplace(std::move(name), std::move(value));
}

const ElementDecl* Dtd::FindElement(std::string_view name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : &it->second;
}

std::vector<std::string> Dtd::ElementNames() const {
  std::vector<std::string> names;
  names.reserve(elements_.size());
  for (const auto& [name, decl] : elements_) names.push_back(name);
  return names;
}

namespace {

const char* AttTypeToString(AttType type) {
  switch (type) {
    case AttType::kCData:
      return "CDATA";
    case AttType::kId:
      return "ID";
    case AttType::kIdRef:
      return "IDREF";
    case AttType::kIdRefs:
      return "IDREFS";
    case AttType::kNmToken:
      return "NMTOKEN";
    case AttType::kNmTokens:
      return "NMTOKENS";
    case AttType::kEntity:
      return "ENTITY";
    case AttType::kEntities:
      return "ENTITIES";
    case AttType::kNotation:
      return "NOTATION";
    case AttType::kEnumeration:
      return "";  // rendered as the enumeration itself
  }
  return "";
}

}  // namespace

std::string Dtd::ToString() const {
  std::string out;
  for (const auto& [name, decl] : elements_) {
    out += StrCat("<!ELEMENT ", name, " ", decl.model.ToString());
    out += ">\n";
    if (!decl.attributes.empty()) {
      out += StrCat("<!ATTLIST ", name);
      for (const auto& att : decl.attributes) {
        out += StrCat("\n  ", att.name, " ");
        if (att.type == AttType::kEnumeration) {
          out += '(';
          for (size_t i = 0; i < att.enum_values.size(); ++i) {
            if (i > 0) out += '|';
            out += att.enum_values[i];
          }
          out += ')';
        } else {
          out += AttTypeToString(att.type);
        }
        switch (att.deflt) {
          case AttDefault::kRequired:
            out += " #REQUIRED";
            break;
          case AttDefault::kImplied:
            out += " #IMPLIED";
            break;
          case AttDefault::kFixed:
            out += StrCat(" #FIXED \"", att.default_value, "\"");
            break;
          case AttDefault::kValue:
            out += StrCat(" \"", att.default_value, "\"");
            break;
        }
      }
      out += ">\n";
    }
  }
  for (const auto& [name, value] : entities_) {
    out += StrCat("<!ENTITY ", name, " \"");
    out += StrCat(value, "\">\n");
  }
  return out;
}

Result<CompiledDtd> CompiledDtd::Compile(const Dtd& dtd) {
  CompiledDtd compiled;
  compiled.dtd_ = &dtd;
  for (const auto& [name, decl] : dtd.elements()) {
    ElementAutomata ea;
    ea.decl = &decl;
    ea.nfa = Nfa::FromContentModel(decl.model);
    if (!ea.nfa.IsDeterministic()) {
      return status::ValidationError(
          StrCat("content model of element '", name,
                 "' is not deterministic (XML 1.0 constraint): ",
                 decl.model.ToString()));
    }
    ea.dfa = Dfa::FromNfa(ea.nfa);
    ea.subsequence = std::make_unique<SubsequenceChecker>(ea.nfa);
    compiled.automata_.emplace(name, std::move(ea));
  }
  return compiled;
}

const CompiledDtd::ElementAutomata* CompiledDtd::Find(
    std::string_view element_name) const {
  auto it = automata_.find(element_name);
  return it == automata_.end() ? nullptr : &it->second;
}

}  // namespace cxml::dtd
