#ifndef CXML_DTD_CONTENT_MODEL_H_
#define CXML_DTD_CONTENT_MODEL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cxml::dtd {

/// Top-level kinds of a DTD content specification.
enum class ContentKind {
  /// `EMPTY` — no children, no character data.
  kEmpty,
  /// `ANY` — any declared elements and character data.
  kAny,
  /// `(#PCDATA | a | b)*` — mixed content.
  kMixed,
  /// `(a, (b|c)*, d?)` — element content (a regular expression over names).
  kChildren,
};

/// Operators of the element-content regular expression AST.
enum class CmOp {
  kName,    ///< a single element name
  kSeq,     ///< `,` sequence (n-ary)
  kChoice,  ///< `|` alternation (n-ary)
  kOpt,     ///< `?`
  kStar,    ///< `*`
  kPlus,    ///< `+`
};

/// A node of the content-model expression tree.
struct CmNode {
  CmOp op = CmOp::kName;
  std::string name;              ///< for kName
  std::vector<CmNode> children;  ///< operands (1 for kOpt/kStar/kPlus)

  static CmNode Name(std::string n) {
    CmNode node;
    node.op = CmOp::kName;
    node.name = std::move(n);
    return node;
  }
  static CmNode Seq(std::vector<CmNode> kids) {
    CmNode node;
    node.op = CmOp::kSeq;
    node.children = std::move(kids);
    return node;
  }
  static CmNode Choice(std::vector<CmNode> kids) {
    CmNode node;
    node.op = CmOp::kChoice;
    node.children = std::move(kids);
    return node;
  }
  static CmNode Unary(CmOp op, CmNode child) {
    CmNode node;
    node.op = op;
    node.children.push_back(std::move(child));
    return node;
  }
};

/// A parsed content specification.
struct ContentModel {
  ContentKind kind = ContentKind::kAny;
  /// Expression tree, meaningful for kChildren.
  CmNode expr;
  /// Allowed child element names, meaningful for kMixed (may be empty for
  /// pure `(#PCDATA)`).
  std::vector<std::string> mixed_names;

  /// True when character data is permitted among children.
  bool AllowsText() const {
    return kind == ContentKind::kMixed || kind == ContentKind::kAny;
  }

  /// Round-trips to DTD source syntax, e.g. `(a,(b|c)*,d?)`.
  std::string ToString() const;

  /// All element names referenced by this model.
  std::vector<std::string> ReferencedNames() const;
};

/// Parses the content-specification part of an `<!ELEMENT ...>` declaration
/// (the text after the element name), e.g. `EMPTY`, `ANY`,
/// `(#PCDATA|w)*`, `(line+, colophon?)`.
Result<ContentModel> ParseContentModel(std::string_view spec);

}  // namespace cxml::dtd

#endif  // CXML_DTD_CONTENT_MODEL_H_
