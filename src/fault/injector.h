#ifndef CXML_FAULT_INJECTOR_H_
#define CXML_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace cxml::fault {

/// Outcome of evaluating a fault point: whether it fired, plus the
/// schedule's optional integer payload (a torn-write byte offset, a
/// write-stall duration in ms, ...). `value` is 0 when the armed
/// schedule carries none.
struct Fired {
  bool fired = false;
  uint64_t value = 0;
  explicit operator bool() const { return fired; }
};

/// Deterministic fault-injection seam.
///
/// Production code holds an `Injector*` that is null (or disarmed) in
/// normal operation; every instrumented site costs one null check plus
/// one relaxed atomic load — see `Injector::Check`. Tests, the
/// `cxml_serverd --fault` flags, and the CXP/1 `FAULT` verb arm named
/// points with schedules drawn from a seeded RNG, so a failing chaos
/// run reproduces from its seed alone.
///
/// Spec grammar (one schedule per point):
///   prob:P[:value]   fire each evaluation with probability P in [0,1]
///   every:N[:value]  fire on every Nth evaluation (N >= 1)
///   once[:value]     fire exactly once, on the next evaluation
///   off              disarm the point
///
/// The canonical points wired through the stack (Arm rejects names
/// outside this list so a typo'd FAULT command fails loudly):
///   wal.fsync          SegmentWriter::Fsync fails with EIO
///   wal.append_torn    SegmentWriter::Append writes only `value` bytes
///                      of the frame, then fails (simulated crash mid-
///                      record; value beyond the frame means "all")
///   net.accept         Server drops an accepted connection immediately
///   net.read_drop      Server closes a connection instead of reading
///   net.write_stall_ms Server sleeps `value` ms before flushing output
///   follower.apply     Follower fails applying one replicated record
class Injector {
 public:
  explicit Injector(uint64_t seed = 1,
                    obs::Registry* registry = nullptr);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Arms `point` with `spec` (replacing any existing schedule), or
  /// disarms it when spec is "off". InvalidArgument on unknown point
  /// or malformed spec.
  Status Arm(const std::string& point, const std::string& spec);

  /// Disarms one point; returns false if it was not armed.
  bool Disarm(const std::string& point);

  /// Disarms every point (does not reset the RNG).
  void DisarmAll();

  /// Resets the RNG stream. Applies to subsequent prob: draws.
  void Reseed(uint64_t seed);
  uint64_t seed() const;

  /// One line per armed point: "<point> <spec> evals=<n> fired=<n>".
  std::vector<std::string> Describe() const;

  /// Total fires across all points since construction.
  uint64_t fired_total() const;

  /// Evaluates `point`'s schedule. Only called once `Check` has seen a
  /// nonzero armed count; takes the injector lock.
  Fired Evaluate(const std::string& point);

  static const std::vector<std::string>& KnownPoints();

  /// The hot-path gate every instrumented site goes through. When no
  /// injector is attached or nothing is armed this is a null check
  /// plus one relaxed load — no lock, no allocation, no string work.
  static Fired Check(Injector* injector, const char* point) {
    if (injector == nullptr ||
        injector->armed_.load(std::memory_order_relaxed) == 0) {
      return {};
    }
    return injector->Evaluate(point);
  }

 private:
  struct Schedule {
    enum class Kind { kProb, kEveryNth, kOnce };
    Kind kind = Kind::kOnce;
    double probability = 0.0;
    uint64_t period = 1;
    uint64_t value = 0;
    uint64_t evals = 0;
    uint64_t fired = 0;
    bool spent = false;
    std::string spec;
  };

  static Status ParseSpec(const std::string& spec, Schedule* out);

  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  uint64_t seed_;
  std::map<std::string, Schedule> points_;
  /// Count of armed points, readable without the lock.
  std::atomic<uint64_t> armed_{0};
  obs::Counter* fired_counter_;
  obs::Gauge* armed_gauge_;
};

}  // namespace cxml::fault

#endif  // CXML_FAULT_INJECTOR_H_
