#include "fault/injector.h"

#include <cstdio>
#include <cstdlib>

namespace cxml::fault {
namespace {

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitColons(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

}  // namespace

Injector::Injector(uint64_t seed, obs::Registry* registry)
    : rng_(seed), seed_(seed) {
  if (registry == nullptr) registry = obs::Registry::Global();
  fired_counter_ = registry->GetCounter("cxml_fault_fired_total");
  armed_gauge_ = registry->GetGauge("cxml_fault_armed");
}

const std::vector<std::string>& Injector::KnownPoints() {
  static const std::vector<std::string>* kPoints =
      new std::vector<std::string>{
          "wal.fsync",      "wal.append_torn",    "net.accept",
          "net.read_drop",  "net.write_stall_ms", "follower.apply",
      };
  return *kPoints;
}

Status Injector::ParseSpec(const std::string& spec, Schedule* out) {
  std::vector<std::string> parts = SplitColons(spec);
  out->spec = spec;
  if (parts[0] == "prob") {
    if (parts.size() < 2 || parts.size() > 3 ||
        !ParseDouble(parts[1], &out->probability) ||
        out->probability < 0.0 || out->probability > 1.0) {
      return status::InvalidArgument("fault spec: want prob:P[:value], P in [0,1], got '" +
                                     spec + "'");
    }
    out->kind = Schedule::Kind::kProb;
    if (parts.size() == 3 && !ParseU64(parts[2], &out->value)) {
      return status::InvalidArgument("fault spec: bad value in '" + spec + "'");
    }
    return Status::Ok();
  }
  if (parts[0] == "every") {
    if (parts.size() < 2 || parts.size() > 3 ||
        !ParseU64(parts[1], &out->period) || out->period == 0) {
      return status::InvalidArgument(
          "fault spec: want every:N[:value], N >= 1, got '" + spec + "'");
    }
    out->kind = Schedule::Kind::kEveryNth;
    if (parts.size() == 3 && !ParseU64(parts[2], &out->value)) {
      return status::InvalidArgument("fault spec: bad value in '" + spec + "'");
    }
    return Status::Ok();
  }
  if (parts[0] == "once") {
    if (parts.size() > 2) {
      return status::InvalidArgument("fault spec: want once[:value], got '" +
                                     spec + "'");
    }
    out->kind = Schedule::Kind::kOnce;
    if (parts.size() == 2 && !ParseU64(parts[1], &out->value)) {
      return status::InvalidArgument("fault spec: bad value in '" + spec + "'");
    }
    return Status::Ok();
  }
  return status::InvalidArgument(
      "fault spec: want prob:|every:|once|off, got '" + spec + "'");
}

Status Injector::Arm(const std::string& point, const std::string& spec) {
  bool known = false;
  for (const std::string& p : KnownPoints()) {
    if (p == point) {
      known = true;
      break;
    }
  }
  if (!known) {
    return status::InvalidArgument("unknown fault point '" + point + "'");
  }
  if (spec == "off") {
    Disarm(point);
    return Status::Ok();
  }
  Schedule sched;
  CXML_RETURN_IF_ERROR(ParseSpec(spec, &sched));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(point, std::move(sched));
  (void)it;
  if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
  armed_gauge_->Set(static_cast<int64_t>(points_.size()));
  return Status::Ok();
}

bool Injector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) == 0) return false;
  armed_.fetch_sub(1, std::memory_order_relaxed);
  armed_gauge_->Set(static_cast<int64_t>(points_.size()));
  return true;
}

void Injector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(0, std::memory_order_relaxed);
  armed_gauge_->Set(0);
}

void Injector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  rng_.seed(seed);
}

uint64_t Injector::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

std::vector<std::string> Injector::Describe() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> lines;
  lines.reserve(points_.size());
  for (const auto& [point, sched] : points_) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s %s evals=%llu fired=%llu",
                  point.c_str(), sched.spec.c_str(),
                  static_cast<unsigned long long>(sched.evals),
                  static_cast<unsigned long long>(sched.fired));
    lines.emplace_back(buf);
  }
  return lines;
}

uint64_t Injector::fired_total() const { return fired_counter_->Value(); }

Fired Injector::Evaluate(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return {};
  Schedule& sched = it->second;
  ++sched.evals;
  bool fire = false;
  switch (sched.kind) {
    case Schedule::Kind::kProb: {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(rng_) < sched.probability;
      break;
    }
    case Schedule::Kind::kEveryNth:
      fire = sched.evals % sched.period == 0;
      break;
    case Schedule::Kind::kOnce:
      fire = !sched.spent;
      sched.spent = true;
      break;
  }
  if (!fire) return {};
  ++sched.fired;
  fired_counter_->Add();
  return Fired{true, sched.value};
}

}  // namespace cxml::fault
