#ifndef CXML_WORKLOAD_BOETHIUS_H_
#define CXML_WORKLOAD_BOETHIUS_H_

#include <string>
#include <vector>

#include "cmh/distributed_document.h"
#include "cmh/hierarchy.h"
#include "common/result.h"

namespace cxml::workload {

/// The paper's running example (Figure 1): a fragment of the Old English
/// translation of Boethius' "Consolation of Philosophy" (British Library
/// MS Cotton Otho A. vi) encoded four times over identical content:
///
///   * `physical`    — manuscript lines        (<line>)
///   * `linguistic`  — sentences and words     (<s>, <w>)
///   * `restoration` — editorial restorations  (<res>)
///   * `damage`      — manuscript damage       (<dmg>)
///
/// The figure itself is an image in the paper; this reconstruction
/// preserves its documented conflict structure: a <w> crosses the <line>
/// break, <res> and <dmg> cross word and line boundaries, so the four
/// encodings cannot merge into one well-formed XML document (DESIGN.md §7).
///
/// All four documents share the root tag `r` (as in the paper) and
/// byte-identical content.

/// Hierarchy names, in document order.
inline constexpr const char* kBoethiusHierarchies[] = {
    "physical", "linguistic", "restoration", "damage"};

/// The shared content of the fragment.
const std::string& BoethiusContent();

/// The four XML encodings (same order as kBoethiusHierarchies).
const std::vector<std::string>& BoethiusSources();

/// The CMH: four single-purpose DTDs sharing root tag "r".
Result<cmh::ConcurrentHierarchies> MakeBoethiusCmh();

/// Convenience: CMH + parsed, consistency-checked distributed document.
/// The CMH is heap-allocated so the DistributedDocument's back-pointer
/// stays valid; keep both alive together.
struct BoethiusCorpus {
  std::unique_ptr<cmh::ConcurrentHierarchies> cmh;
  std::unique_ptr<cmh::DistributedDocument> doc;
};
Result<BoethiusCorpus> MakeBoethiusCorpus();

}  // namespace cxml::workload

#endif  // CXML_WORKLOAD_BOETHIUS_H_
