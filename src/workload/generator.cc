#include "workload/generator.h"

#include <random>

#include "common/interval.h"
#include "common/strings.h"
#include "dtd/dtd.h"
#include "xml/writer.h"

namespace cxml::workload {

namespace {

/// ASCII-transliterated Old English vocabulary (ASCII only, so line
/// breaks at arbitrary character offsets never split a UTF-8 sequence).
constexpr const char* kVocabulary[] = {
    "tha",    "se",     "wisdom", "thisne", "leoth",  "asungen",
    "haefde", "ongan",  "eft",    "seggan", "swa",    "hwa",
    "wille",  "wyrcan", "sceal",  "aerest", "onginnan", "thaet",
    "he",     "maege",  "theah",  "hit",    "riht",   "spell",
    "cyning", "folc",   "guma",   "wexeth", "swithe", "mid",
    "ealle",  "monna",  "cynne",  "weorold", "gesceaft", "dryhten",
};
constexpr size_t kVocabularySize =
    sizeof(kVocabulary) / sizeof(kVocabulary[0]);

/// Lines per page in the physical hierarchy.
constexpr size_t kLinesPerPage = 20;

struct WordSpan {
  Interval chars;
};

}  // namespace

Result<SyntheticCorpus> GenerateManuscript(const GeneratorParams& params) {
  if (params.content_chars == 0 || params.line_chars == 0 ||
      params.words_per_sentence == 0) {
    return status::InvalidArgument(
        "generator parameters must be positive");
  }
  std::mt19937_64 rng(params.seed);

  // ---- content + word boundaries ----
  std::string content;
  content.reserve(params.content_chars + 16);
  std::vector<WordSpan> words;
  std::uniform_int_distribution<size_t> pick_word(0, kVocabularySize - 1);
  while (content.size() < params.content_chars) {
    if (!content.empty()) content.push_back(' ');
    const char* word = kVocabulary[pick_word(rng)];
    size_t begin = content.size();
    content.append(word);
    words.push_back({Interval(begin, content.size())});
  }

  SyntheticCorpus corpus;
  corpus.cmh = std::make_unique<cmh::ConcurrentHierarchies>("r");

  // ---- hierarchy 0: physical (page, line) ----
  {
    auto dtd = dtd::ParseDtd(
        "<!ELEMENT r (page+)>"
        "<!ELEMENT page (line+)>"
        "<!ELEMENT line (#PCDATA)>"
        "<!ATTLIST page n CDATA #REQUIRED>"
        "<!ATTLIST line n CDATA #REQUIRED>");
    if (!dtd.ok()) return dtd.status();
    CXML_RETURN_IF_ERROR(
        corpus.cmh->AddHierarchy("physical", std::move(dtd).value())
            .status());
    xml::XmlWriter writer;
    writer.StartElement("r");
    size_t pos = 0;
    size_t line_no = 1;
    size_t page_no = 1;
    bool page_open = false;
    while (pos < content.size()) {
      if (!page_open) {
        writer.StartElement(
            "page", {{"n", StrFormat("%zu", page_no++)}});
        page_open = true;
      }
      size_t end = std::min(pos + params.line_chars, content.size());
      writer.StartElement("line", {{"n", StrFormat("%zu", line_no)}});
      writer.Text(std::string_view(content).substr(pos, end - pos));
      writer.EndElement();
      pos = end;
      if (line_no % kLinesPerPage == 0 || pos >= content.size()) {
        writer.EndElement();  // page
        page_open = false;
      }
      ++line_no;
    }
    if (content.empty()) {
      // Degenerate case: one empty page/line pair keeps the DTD happy.
      writer.StartElement("page", {{"n", "1"}});
      writer.EmptyElement("line", {{"n", "1"}});
      writer.EndElement();
    }
    writer.EndElement();  // r
    CXML_ASSIGN_OR_RETURN(std::string doc, writer.Finish());
    corpus.sources.push_back(std::move(doc));
  }

  // ---- hierarchy 1: linguistic (s, w) ----
  {
    auto dtd = dtd::ParseDtd(
        "<!ELEMENT r (#PCDATA|s)*>"
        "<!ELEMENT s (#PCDATA|w)*>"
        "<!ELEMENT w (#PCDATA)>"
        "<!ATTLIST s n CDATA #IMPLIED>");
    if (!dtd.ok()) return dtd.status();
    CXML_RETURN_IF_ERROR(
        corpus.cmh->AddHierarchy("linguistic", std::move(dtd).value())
            .status());
    xml::XmlWriter writer;
    writer.StartElement("r");
    std::uniform_int_distribution<size_t> jitter(
        params.words_per_sentence / 2 + 1,
        params.words_per_sentence * 3 / 2 + 1);
    size_t pos = 0;
    size_t i = 0;
    size_t sentence_no = 1;
    while (i < words.size()) {
      size_t take = std::min(jitter(rng), words.size() - i);
      // Inter-sentence space lives directly under <r>.
      if (words[i].chars.begin > pos) {
        writer.Text(std::string_view(content)
                        .substr(pos, words[i].chars.begin - pos));
        pos = words[i].chars.begin;
      }
      writer.StartElement("s", {{"n", StrFormat("%zu", sentence_no++)}});
      for (size_t k = 0; k < take; ++k, ++i) {
        if (words[i].chars.begin > pos) {
          writer.Text(std::string_view(content)
                          .substr(pos, words[i].chars.begin - pos));
        }
        writer.StartElement("w");
        writer.Text(std::string_view(content)
                        .substr(words[i].chars.begin,
                                words[i].chars.length()));
        writer.EndElement();
        pos = words[i].chars.end;
      }
      writer.EndElement();  // s
    }
    if (pos < content.size()) {
      writer.Text(std::string_view(content).substr(pos));
    }
    writer.EndElement();  // r
    CXML_ASSIGN_OR_RETURN(std::string doc, writer.Finish());
    corpus.sources.push_back(std::move(doc));
  }

  // ---- hierarchies 2..: flat annotation ranges ----
  for (size_t k = 0; k < params.extra_hierarchies; ++k) {
    std::string tag = StrFormat("a%zu", k);
    auto dtd = dtd::ParseDtd(StrFormat(
        "<!ELEMENT r (#PCDATA|%s)*>"
        "<!ELEMENT %s (#PCDATA)>"
        "<!ATTLIST %s n CDATA #IMPLIED>",
        tag.c_str(), tag.c_str(), tag.c_str()));
    if (!dtd.ok()) return dtd.status();
    CXML_RETURN_IF_ERROR(
        corpus.cmh->AddHierarchy(StrFormat("ann%zu", k),
                                 std::move(dtd).value())
            .status());
    // Non-overlapping random ranges within this hierarchy; free to
    // overlap everything in the other hierarchies.
    double target = params.annotation_density *
                    static_cast<double>(content.size()) / 1000.0;
    size_t count = target < 1 ? 1 : static_cast<size_t>(target);
    size_t covered = count * params.annotation_chars;
    size_t mean_gap =
        covered >= content.size()
            ? 1
            : std::max<size_t>(1, (content.size() - covered) / (count + 1));
    std::uniform_int_distribution<size_t> gap_dist(1, 2 * mean_gap);
    std::uniform_int_distribution<size_t> len_dist(
        std::max<size_t>(1, params.annotation_chars / 2),
        params.annotation_chars * 3 / 2);

    std::vector<Interval> ranges;
    size_t pos = gap_dist(rng) % std::max<size_t>(1, content.size());
    while (pos < content.size()) {
      size_t len = len_dist(rng);
      size_t end = std::min(pos + len, content.size());
      if (end > pos) ranges.push_back(Interval(pos, end));
      pos = end + gap_dist(rng);
    }

    xml::XmlWriter writer;
    writer.StartElement("r");
    size_t cursor = 0;
    size_t n = 1;
    for (const Interval& range : ranges) {
      if (range.begin > cursor) {
        writer.Text(std::string_view(content)
                        .substr(cursor, range.begin - cursor));
      }
      writer.StartElement(tag, {{"n", StrFormat("%zu", n++)}});
      writer.Text(
          std::string_view(content).substr(range.begin, range.length()));
      writer.EndElement();
      cursor = range.end;
    }
    if (cursor < content.size()) {
      writer.Text(std::string_view(content).substr(cursor));
    }
    writer.EndElement();
    CXML_ASSIGN_OR_RETURN(std::string doc, writer.Finish());
    corpus.sources.push_back(std::move(doc));
  }

  CXML_ASSIGN_OR_RETURN(
      cmh::DistributedDocument doc,
      cmh::DistributedDocument::Parse(*corpus.cmh, corpus.SourceViews()));
  corpus.doc = std::make_unique<cmh::DistributedDocument>(std::move(doc));
  return corpus;
}

Result<std::vector<TrafficOp>> GenerateTraffic(const TrafficParams& params) {
  if (params.write_fraction > 0 && params.extra_hierarchies == 0) {
    return status::InvalidArgument(
        "write traffic needs >= 1 annotation hierarchy to write into");
  }
  if (params.write_fraction < 0 || params.write_fraction > 1 ||
      params.stat_fraction < 0 || params.stat_fraction > 1 ||
      params.xquery_fraction < 0 || params.xquery_fraction > 1) {
    return status::InvalidArgument("traffic fractions must be in [0,1]");
  }
  std::mt19937_64 rng(params.seed);

  // Read pool, roughly ordered hottest-first; the skewed index draw
  // below makes the head of each pool dominate.
  const std::vector<std::string> xpath_pool = {
      "count(//w)",
      "//w[overlapping::line]",
      "//line",
      "string(//line[@n='2'])",
      "count(//a0)",
      "//s[position() <= 3]",
      "//w[contains(., 'a')]",
      "count(//page/line)",
      "//a0[overlapping::w]",
      "//line[@n='1']/following-sibling::line",
  };
  const std::vector<std::string> xquery_pool = {
      "for $w in //w[overlapping::line] return {string($w)}",
      "let $n := count(//s) return {concat('sentences: ', string($n))}",
      "for $a in //a0 where overlap-degree($a) > 0 "
      "return {string($a/@n)}",
      "for $l in //line where count($l/overlapping::s) > 0 "
      "return {string($l/@n)}",
  };
  // P(i) ~ 2^-i over the pool: i = trailing-geometric draw.
  auto skewed_index = [&rng](size_t size) -> size_t {
    std::geometric_distribution<size_t> geo(0.5);
    return std::min(geo(rng), size - 1);
  };

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<size_t> pick_hierarchy(
      0, params.extra_hierarchies - 1);
  size_t max_start = params.content_chars > params.edit_chars
                         ? params.content_chars - params.edit_chars
                         : 0;
  std::uniform_int_distribution<size_t> pick_start(0, max_start);

  std::vector<TrafficOp> ops;
  ops.reserve(params.num_ops);
  size_t stats_emitted = 0;
  for (size_t i = 0; i < params.num_ops; ++i) {
    TrafficOp op;
    // The stat coin is only drawn when the feature is on, so seeds
    // from before kStat existed keep producing the same op stream.
    double write_roll = coin(rng);
    if (write_roll >= params.write_fraction && params.stat_fraction > 0 &&
        coin(rng) < params.stat_fraction) {
      op.kind = TrafficOp::Kind::kStat;
      op.query = (stats_emitted++ % 2 == 0) ? "LIST" : "STAT";
      ops.push_back(std::move(op));
      continue;
    }
    if (write_roll < params.write_fraction) {
      size_t k = pick_hierarchy(rng);
      op.kind = TrafficOp::Kind::kEdit;
      // Hierarchies 0/1 are physical/linguistic; annotations start at 2.
      op.edit_hierarchy = static_cast<cmh::HierarchyId>(2 + k);
      op.edit_tag = StrFormat("a%zu", k);
      size_t begin = pick_start(rng);
      op.edit_chars = Interval(
          begin, std::min(begin + params.edit_chars, params.content_chars));
    } else if (coin(rng) < params.xquery_fraction) {
      op.kind = TrafficOp::Kind::kXQuery;
      op.query = xquery_pool[skewed_index(xquery_pool.size())];
    } else {
      op.kind = TrafficOp::Kind::kXPath;
      op.query = xpath_pool[skewed_index(xpath_pool.size())];
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace cxml::workload
