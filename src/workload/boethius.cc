#include "workload/boethius.h"

#include "dtd/dtd.h"

namespace cxml::workload {

namespace {

// Content: "Ða se Wisdom þa þis fitte asungen hæfde þa ongan he eft
// seggan" (then, when Wisdom had sung this song, he began again to
// speak) — folio 36v region of the manuscript, modern transcription
// conventions.
//
// Conflict structure (paper Figure 1):
//   * <w>asungen</w> crosses the line 1 / line 2 break,
//   * <res> starts inside "fitte", ends inside "hæfde" (crosses two word
//     boundaries and the line break),
//   * <dmg> starts inside "ongan", ends inside "seggan" (crosses words).
constexpr const char* kPhysical =
    "<r><line n=\"1\">\xC3\x90""a se Wisdom \xC3\xBE""a \xC3\xBE""is fitte "
    "asun</line><line n=\"2\">gen h\xC3\xA6""fde \xC3\xBE""a ongan he eft "
    "seggan</line></r>";

constexpr const char* kLinguistic =
    "<r><s><w>\xC3\x90""a</w> <w>se</w> <w>Wisdom</w> <w>\xC3\xBE""a</w> "
    "<w>\xC3\xBE""is</w> <w>fitte</w> <w>asungen</w> <w>h\xC3\xA6"
    "fde</w></s> <s><w>\xC3\xBE""a</w> <w>ongan</w> <w>he</w> <w>eft</w> "
    "<w>seggan</w></s></r>";

constexpr const char* kRestoration =
    "<r>\xC3\x90""a se Wisdom \xC3\xBE""a \xC3\xBE""is fi<res resp=\"ed\">"
    "tte asungen h\xC3\xA6</res>fde \xC3\xBE""a ongan he eft seggan</r>";

constexpr const char* kDamage =
    "<r>\xC3\x90""a se Wisdom \xC3\xBE""a \xC3\xBE""is fitte asungen "
    "h\xC3\xA6""fde \xC3\xBE""a on<dmg type=\"stain\">gan he eft "
    "seg</dmg>gan</r>";

constexpr const char* kPhysicalDtd =
    "<!ELEMENT r (line+)>"
    "<!ELEMENT line (#PCDATA)>"
    "<!ATTLIST line n CDATA #REQUIRED>";

constexpr const char* kLinguisticDtd =
    "<!ELEMENT r (#PCDATA|s)*>"
    "<!ELEMENT s (#PCDATA|w)*>"
    "<!ELEMENT w (#PCDATA)>";

constexpr const char* kRestorationDtd =
    "<!ELEMENT r (#PCDATA|res)*>"
    "<!ELEMENT res (#PCDATA)>"
    "<!ATTLIST res resp CDATA #IMPLIED>";

constexpr const char* kDamageDtd =
    "<!ELEMENT r (#PCDATA|dmg)*>"
    "<!ELEMENT dmg (#PCDATA)>"
    "<!ATTLIST dmg type CDATA #IMPLIED agent CDATA #IMPLIED>";

}  // namespace

const std::string& BoethiusContent() {
  static const std::string kContent =
      "\xC3\x90""a se Wisdom \xC3\xBE""a \xC3\xBE""is fitte asungen "
      "h\xC3\xA6""fde \xC3\xBE""a ongan he eft seggan";
  return kContent;
}

const std::vector<std::string>& BoethiusSources() {
  static const std::vector<std::string> kSources = {
      kPhysical, kLinguistic, kRestoration, kDamage};
  return kSources;
}

Result<cmh::ConcurrentHierarchies> MakeBoethiusCmh() {
  cmh::ConcurrentHierarchies cmh("r");
  const char* dtds[] = {kPhysicalDtd, kLinguisticDtd, kRestorationDtd,
                        kDamageDtd};
  for (size_t i = 0; i < 4; ++i) {
    CXML_ASSIGN_OR_RETURN(dtd::Dtd dtd, dtd::ParseDtd(dtds[i]));
    CXML_RETURN_IF_ERROR(
        cmh.AddHierarchy(kBoethiusHierarchies[i], std::move(dtd)).status());
  }
  return cmh;
}

Result<BoethiusCorpus> MakeBoethiusCorpus() {
  CXML_ASSIGN_OR_RETURN(cmh::ConcurrentHierarchies cmh, MakeBoethiusCmh());
  BoethiusCorpus corpus;
  corpus.cmh =
      std::make_unique<cmh::ConcurrentHierarchies>(std::move(cmh));
  std::vector<std::string_view> sources;
  for (const std::string& s : BoethiusSources()) sources.push_back(s);
  CXML_ASSIGN_OR_RETURN(
      cmh::DistributedDocument doc,
      cmh::DistributedDocument::Parse(*corpus.cmh, sources));
  corpus.doc = std::make_unique<cmh::DistributedDocument>(std::move(doc));
  return corpus;
}

}  // namespace cxml::workload
