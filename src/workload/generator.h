#ifndef CXML_WORKLOAD_GENERATOR_H_
#define CXML_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cmh/distributed_document.h"
#include "cmh/hierarchy.h"
#include "common/interval.h"
#include "common/result.h"

namespace cxml::workload {

/// Parameters of a synthetic manuscript. The generator reproduces the
/// statistical shape of the paper's corpus (DESIGN.md §7): a physical
/// hierarchy (pages/lines), a linguistic hierarchy (sentences/words) with
/// boundaries deliberately misaligned with the physical ones, and any
/// number of extra annotation hierarchies (ranges placed uniformly, so
/// they overlap everything else at a controllable rate).
struct GeneratorParams {
  /// Approximate content size in characters.
  size_t content_chars = 10'000;
  /// Characters per physical line (lines per page fixed at 20).
  size_t line_chars = 60;
  /// Mean words per sentence.
  size_t words_per_sentence = 12;
  /// Number of extra annotation hierarchies beyond physical+linguistic
  /// (each contributes `annotation_density` elements per 1000 chars).
  size_t extra_hierarchies = 2;
  /// Annotation elements per 1000 content characters, per extra
  /// hierarchy.
  double annotation_density = 4.0;
  /// Mean annotation length in characters.
  size_t annotation_chars = 80;
  /// RNG seed (generation is deterministic given params).
  uint64_t seed = 42;
};

/// A generated corpus: CMH + distributed document, lifetimes bundled.
struct SyntheticCorpus {
  std::unique_ptr<cmh::ConcurrentHierarchies> cmh;
  std::unique_ptr<cmh::DistributedDocument> doc;
  /// The raw per-hierarchy XML sources (same order as the CMH).
  std::vector<std::string> sources;

  std::vector<std::string_view> SourceViews() const {
    return {sources.begin(), sources.end()};
  }
};

/// Generates a synthetic manuscript. Hierarchy 0 is "physical"
/// (page, line), hierarchy 1 is "linguistic" (s, w), hierarchies 2..N
/// are "ann<k>" with a single element type `a<k>` that may overlap
/// everything.
Result<SyntheticCorpus> GenerateManuscript(const GeneratorParams& params);

// ------------------------------------------------------ service traffic

/// One operation of a synthetic service workload over a generated
/// manuscript: an Extended XPath read, an XQuery read, a markup
/// insertion (an annotation range in one of the extra hierarchies), or
/// a metadata probe (the LIST/STAT verbs a wire client interleaves
/// with queries).
struct TrafficOp {
  enum class Kind { kXPath, kXQuery, kEdit, kStat };
  Kind kind = Kind::kXPath;
  /// Reads: the query string. Metadata probes: "LIST" or "STAT".
  std::string query;
  /// Writes: insert `<edit_tag>` into `edit_hierarchy` over `edit_chars`.
  cmh::HierarchyId edit_hierarchy = 0;
  std::string edit_tag;
  Interval edit_chars;
};

/// Shape of the mixed read/write traffic. Queries are drawn from a
/// fixed pool with a Zipf-like skew (a few hot queries dominate, as in
/// real serving traffic), so caches have something to win on; reads and
/// writes interleave deterministically given the seed.
struct TrafficParams {
  size_t num_ops = 256;
  /// Fraction of operations that are markup insertions.
  double write_fraction = 0.05;
  /// Fraction of non-write operations that are metadata probes
  /// (alternating LIST/STAT); 0 keeps the op stream byte-identical to
  /// the pre-kStat generator for a given seed.
  double stat_fraction = 0.0;
  /// Fraction of *reads* that are XQuery (the rest are XPath).
  double xquery_fraction = 0.25;
  /// Must match the GeneratorParams of the corpus the traffic targets.
  size_t content_chars = 10'000;
  size_t extra_hierarchies = 2;
  /// Length of inserted annotation ranges.
  size_t edit_chars = 40;
  uint64_t seed = 1234;
};

/// Generates a deterministic operation sequence; requires
/// `extra_hierarchies >= 1` when `write_fraction > 0` (writes target
/// the annotation hierarchies).
Result<std::vector<TrafficOp>> GenerateTraffic(const TrafficParams& params);

}  // namespace cxml::workload

#endif  // CXML_WORKLOAD_GENERATOR_H_
