#ifndef CXML_WORKLOAD_GENERATOR_H_
#define CXML_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cmh/distributed_document.h"
#include "cmh/hierarchy.h"
#include "common/result.h"

namespace cxml::workload {

/// Parameters of a synthetic manuscript. The generator reproduces the
/// statistical shape of the paper's corpus (DESIGN.md §7): a physical
/// hierarchy (pages/lines), a linguistic hierarchy (sentences/words) with
/// boundaries deliberately misaligned with the physical ones, and any
/// number of extra annotation hierarchies (ranges placed uniformly, so
/// they overlap everything else at a controllable rate).
struct GeneratorParams {
  /// Approximate content size in characters.
  size_t content_chars = 10'000;
  /// Characters per physical line (lines per page fixed at 20).
  size_t line_chars = 60;
  /// Mean words per sentence.
  size_t words_per_sentence = 12;
  /// Number of extra annotation hierarchies beyond physical+linguistic
  /// (each contributes `annotation_density` elements per 1000 chars).
  size_t extra_hierarchies = 2;
  /// Annotation elements per 1000 content characters, per extra
  /// hierarchy.
  double annotation_density = 4.0;
  /// Mean annotation length in characters.
  size_t annotation_chars = 80;
  /// RNG seed (generation is deterministic given params).
  uint64_t seed = 42;
};

/// A generated corpus: CMH + distributed document, lifetimes bundled.
struct SyntheticCorpus {
  std::unique_ptr<cmh::ConcurrentHierarchies> cmh;
  std::unique_ptr<cmh::DistributedDocument> doc;
  /// The raw per-hierarchy XML sources (same order as the CMH).
  std::vector<std::string> sources;

  std::vector<std::string_view> SourceViews() const {
    return {sources.begin(), sources.end()};
  }
};

/// Generates a synthetic manuscript. Hierarchy 0 is "physical"
/// (page, line), hierarchy 1 is "linguistic" (s, w), hierarchies 2..N
/// are "ann<k>" with a single element type `a<k>` that may overlap
/// everything.
Result<SyntheticCorpus> GenerateManuscript(const GeneratorParams& params);

}  // namespace cxml::workload

#endif  // CXML_WORKLOAD_GENERATOR_H_
